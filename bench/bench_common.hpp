// Shared helpers for the figure/table reproduction benches.
#pragma once

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <string>

#include "core/profiler.hpp"
#include "instrument/loop_registry.hpp"
#include "support/env.hpp"
#include "support/table.hpp"
#include "telemetry/perf_counters.hpp"
#include "telemetry/trace.hpp"
#include "threading/thread_pool.hpp"
#include "workloads/workload.hpp"

namespace commscope::bench {

/// Opt-in profiler-timeline capture for benches: when $COMMSCOPE_TRACE_OUT
/// names a file, the telemetry tracer runs for the bench's lifetime and the
/// Chrome trace JSON is written at scope exit. Without the variable this is
/// a complete no-op, so figure numbers stay untouched by default.
class TraceOutFromEnv {
 public:
  TraceOutFromEnv() {
    const char* path = std::getenv("COMMSCOPE_TRACE_OUT");
    if (path != nullptr && *path != '\0') {
      path_ = path;
      telemetry::Tracer::enable();
    }
  }
  ~TraceOutFromEnv() {
    if (path_.empty()) return;
    telemetry::Tracer::disable();
    std::ofstream out(path_);
    if (!out) {
      std::cerr << "cannot write " << path_ << "\n";
      return;
    }
    telemetry::Tracer::write_chrome_trace(out, [](std::uint32_t id) {
      return instrument::LoopRegistry::instance().label(id);
    });
    std::cerr << telemetry::Tracer::captured() << " trace events written to "
              << path_ << "\n";
  }
  TraceOutFromEnv(const TraceOutFromEnv&) = delete;
  TraceOutFromEnv& operator=(const TraceOutFromEnv&) = delete;

 private:
  std::string path_;
};

/// Wall-clock seconds of `fn`.
inline double time_seconds(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

/// Fresh profiler with the bench-default configuration. When
/// $COMMSCOPE_EPOCH_EVERY is set (access count per epoch), the flight
/// recorder runs during the bench — the knob behind the recorder-overhead
/// measurement in EXPERIMENTS.md; unset, the recorder stays disabled and the
/// bench path is byte-for-byte the historical one.
inline std::unique_ptr<core::Profiler> make_profiler(
    int threads, core::Backend backend = core::Backend::kAsymmetricSignature,
    std::size_t slots = 1 << 20, double fp_rate = 0.001) {
  core::ProfilerOptions o;
  o.max_threads = threads;
  o.backend = backend;
  o.signature_slots = slots;
  o.fp_rate = fp_rate;
  if (const char* env = std::getenv("COMMSCOPE_EPOCH_EVERY");
      env != nullptr && *env != '\0') {
    o.epoch_accesses = static_cast<std::uint64_t>(std::atoll(env));
  }
  // COMMSCOPE_PERF=1 arms the hardware-counter engine (README "Hardware
  // counters"); on PMU-less hosts the bench runs identically, degraded.
  if (const char* env = std::getenv("COMMSCOPE_PERF");
      env != nullptr && *env == '1') {
    o.perf = true;
  }
  return std::make_unique<core::Profiler>(o);
}

/// One-paragraph hardware grounding for the figure benches: whole-run
/// LLC-miss/HITM totals next to the communication volume they are meant to
/// explain. Silent when the engine was not requested; one provenance line
/// when it was requested but the host refused perf_event_open.
inline void print_perf_grounding(const core::Profiler& profiler,
                                 std::ostream& os) {
  const telemetry::PerfCounters* pc = profiler.perf_counters();
  if (pc == nullptr) return;
  if (!pc->available()) {
    os << "\nhardware grounding: perf_event_open unavailable on this host "
          "(matrices unaffected)\n";
    return;
  }
  const telemetry::PerfDelta d = profiler.regions().root().aggregate_perf();
  const std::uint64_t bytes = profiler.regions().root().aggregate().total();
  os << "\nhardware grounding (" << telemetry::to_string(pc->hitm_source())
     << "): llc-misses=" << d.llc_misses << " hitm=" << d.hitm;
  if (bytes > 0) {
    os << "  (" << static_cast<double>(d.llc_misses) * 64.0 /
                       static_cast<double>(bytes)
       << " miss-bytes per comm-byte)";
  }
  if (d.multiplexed) os << "  [multiplex-scaled]";
  os << "\n";
}

/// Standard bench banner with the effective configuration.
inline void banner(const char* title, int threads, support::Scale scale) {
  std::cout << "=== " << title << " ===\n"
            << "threads=" << threads << " scale=" << support::to_string(scale)
            << "  (override via COMMSCOPE_THREADS / COMMSCOPE_SCALE)\n\n";
}

}  // namespace commscope::bench
