// Shared helpers for the figure/table reproduction benches.
#pragma once

#include <chrono>
#include <functional>
#include <iostream>
#include <memory>

#include "core/profiler.hpp"
#include "support/env.hpp"
#include "support/table.hpp"
#include "threading/thread_pool.hpp"
#include "workloads/workload.hpp"

namespace commscope::bench {

/// Wall-clock seconds of `fn`.
inline double time_seconds(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

/// Fresh profiler with the bench-default configuration.
inline std::unique_ptr<core::Profiler> make_profiler(
    int threads, core::Backend backend = core::Backend::kAsymmetricSignature,
    std::size_t slots = 1 << 20, double fp_rate = 0.001) {
  core::ProfilerOptions o;
  o.max_threads = threads;
  o.backend = backend;
  o.signature_slots = slots;
  o.fp_rate = fp_rate;
  return std::make_unique<core::Profiler>(o);
}

/// Standard bench banner with the effective configuration.
inline void banner(const char* title, int threads, support::Scale scale) {
  std::cout << "=== " << title << " ===\n"
            << "threads=" << threads << " scale=" << support::to_string(scale)
            << "  (override via COMMSCOPE_THREADS / COMMSCOPE_SCALE)\n\n";
}

}  // namespace commscope::bench
