// Figure 6 reproduction: nested communication patterns in SPLASH lu_ncb.
//
// The paper's figure shows the program-level communication matrix of lu_ncb
// decomposed into the matrices of its nested regions — daxpy(), bmod(),
// TouchA(), barrier() inside lu() — with "the final communication matrix ...
// obtained by summing all its child matrices together". This bench runs the
// lu_ncb replica, prints the per-region nested matrices as heatmaps, and
// machine-checks the sum property.
#include "bench_common.hpp"

#include <set>
#include <string>

#include "core/report.hpp"

namespace cb = commscope::bench;
namespace cc = commscope::core;
namespace cs = commscope::support;
namespace cw = commscope::workloads;

int main() {
  const int threads = cs::env_threads(8);
  const cs::Scale scale = cs::env_scale();
  cb::banner("Figure 6: nested communication patterns in lu_ncb", threads,
             scale);

  auto profiler = cb::make_profiler(threads, cc::Backend::kExact);
  commscope::threading::ThreadTeam team(threads);
  if (!cw::find("lu_ncb")->run(scale, team, profiler.get()).ok) {
    std::cerr << "lu_ncb verification FAILED\n";
    return 1;
  }
  profiler->finalize();

  // Program-level matrix (the figure's big right-hand matrix).
  const cc::Matrix whole = profiler->communication_matrix().trimmed(threads);
  cs::print_heatmap(std::cout, whole.cells(),
                    static_cast<std::size_t>(whole.size()),
                    "(lu_ncb) communication matrix");

  // The nested region matrices (the figure's left-hand boxes).
  const std::set<std::string> figure_regions{
      "lu:TouchA", "lu:daxpy", "lu:bdiv", "lu:bmod", "sync:barrier"};
  bool sum_property = true;
  for (const cc::RegionNode* node : profiler->regions().preorder()) {
    // Check the paper's parent-as-sum-of-children identity on every node.
    cc::Matrix reconstructed = node->direct();
    for (const cc::RegionNode* c : node->children()) {
      reconstructed += c->aggregate();
    }
    if (!(reconstructed == node->aggregate())) sum_property = false;

    if (!figure_regions.count(node->label())) continue;
    const cc::Matrix m = node->aggregate().trimmed(threads);
    if (m.total() == 0) continue;
    cs::print_heatmap(std::cout, m.cells(),
                      static_cast<std::size_t>(m.size()),
                      node->label() + " (entries=" +
                          std::to_string(node->entries()) + ")");
  }

  cc::ReportOptions ropts;
  ropts.hide_quiet_regions = true;
  std::ostream& os = std::cout;
  os << "Region index:\n";
  cs::Table table({"region", "depth", "entries", "aggregate bytes"});
  for (const cc::RegionRow& r : cc::region_rows(profiler->regions(), ropts)) {
    table.add_row({std::string(static_cast<std::size_t>(r.depth) * 2, ' ') +
                       r.label,
                   std::to_string(r.depth), std::to_string(r.entries),
                   cs::Table::bytes(r.aggregate_bytes)});
  }
  table.print(os);

  cb::print_perf_grounding(*profiler, std::cout);

  std::cout << "\nParent = sum of children across the whole region tree: "
            << (sum_property ? "HOLDS" : "VIOLATED") << "\n";
  std::cout << "Reproduced: daxpy concentrates on the panel owners, bmod is "
               "the dense broadcast, barrier is the hub pattern.\n";
  return sum_property ? 0 : 1;
}
