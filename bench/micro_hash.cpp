// Hash-function ablation (google-benchmark).
//
// Section IV.D.2 justifies MurmurHash: "much lower time complexity while
// having less collisions in comparison with other hash functions". This
// bench measures throughput of the candidate hashes on address-like keys and
// reports the slot-collision ratio of each as a counter, so both halves of
// the claim are visible in one run.
#include <benchmark/benchmark.h>

#include <unordered_set>
#include <vector>

#include "support/hash.hpp"

namespace cs = commscope::support;

namespace {

std::vector<std::uintptr_t> make_addresses(std::size_t n) {
  // Allocator-like addresses: a dense 8-byte-strided sweep plus scattered
  // heap blocks.
  std::vector<std::uintptr_t> addrs;
  addrs.reserve(n);
  std::uintptr_t heap = 0x7f3200000000;
  for (std::size_t i = 0; i < n; ++i) {
    if (i % 4 == 0) heap += 4096 + (i % 7) * 64;
    addrs.push_back(heap + i * 8);
  }
  return addrs;
}

/// Distinct slots hit per key over a 2^20-slot table (1.0 = perfect spread).
template <typename Hash>
double slot_spread(const std::vector<std::uintptr_t>& addrs, Hash hash) {
  constexpr std::size_t kSlots = 1 << 20;
  std::unordered_set<std::uint64_t> used;
  for (const std::uintptr_t a : addrs) used.insert(hash(a) % kSlots);
  return static_cast<double>(used.size()) / static_cast<double>(addrs.size());
}

template <typename Hash>
void run_hash_bench(benchmark::State& state, Hash hash) {
  const auto addrs = make_addresses(4096);
  for (auto _ : state) {
    std::uint64_t acc = 0;
    for (const std::uintptr_t a : addrs) acc ^= hash(a);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(addrs.size()));
  state.counters["slot_spread"] = slot_spread(addrs, hash);
}

void BM_MurmurMix64(benchmark::State& state) {
  run_hash_bench(state, [](std::uintptr_t a) { return cs::murmur_mix64(a); });
}

void BM_Murmur3Buffer(benchmark::State& state) {
  run_hash_bench(state, [](std::uintptr_t a) {
    return cs::murmur3_x64_64(&a, sizeof a, 0);
  });
}

void BM_Fnv1a(benchmark::State& state) {
  run_hash_bench(state,
                 [](std::uintptr_t a) { return cs::fnv1a_64(&a, sizeof a); });
}

void BM_StdHash(benchmark::State& state) {
  run_hash_bench(state, [](std::uintptr_t a) {
    return static_cast<std::uint64_t>(std::hash<std::uintptr_t>{}(a));
  });
}

void BM_IdentityHash(benchmark::State& state) {
  run_hash_bench(state,
                 [](std::uintptr_t a) { return cs::identity_hash(a); });
}

}  // namespace

BENCHMARK(BM_MurmurMix64);
BENCHMARK(BM_Murmur3Buffer);
BENCHMARK(BM_Fnv1a);
BENCHMARK(BM_StdHash);
BENCHMARK(BM_IdentityHash);
