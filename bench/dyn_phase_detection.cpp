// Section V.A.4 reproduction: dynamic-behaviour detection.
//
// Paper: "applications may transition into different phases of computation
// at runtime ... Almost every previous approach[ ] ... provide[s] a static
// pattern for overall program execution. This leads to wrong results when
// the application contains more than one computational task. DiscoPoP on the
// other hand fully supports this feature."
//
// The bench profiles fft (whose stages shift the butterfly span) and a
// two-task composite (stencil sweeps then an all-to-all reduction), slices
// the dependency stream into fixed-volume windows, and segments the windows
// into phases. The reproduced claim: the composite's whole-run matrix blurs
// two patterns that phase detection separates cleanly.
#include "bench_common.hpp"

#include <vector>

#include "core/phase.hpp"
#include "power/dvfs.hpp"
#include "instrument/loop_scope.hpp"
#include "patterns/classifier.hpp"
#include "support/stats.hpp"

namespace cb = commscope::bench;
namespace cc = commscope::core;
namespace ci = commscope::instrument;
namespace cp = commscope::patterns;
namespace cs = commscope::support;
namespace ct = commscope::threading;
namespace cw = commscope::workloads;

namespace {

/// Two-task composite: halo stencil sweeps, then an all-to-all gather.
void run_composite(cc::Profiler& profiler, ct::ThreadTeam& team,
                   std::size_t items, int sweeps) {
  std::vector<double> field(items, 1.0);
  std::vector<double> next(items, 0.0);
  std::vector<double> partial(static_cast<std::size_t>(team.size()), 0.0);
  team.run([&](int tid) {
    profiler.on_thread_begin(tid);
    ci::AccessSink& sink = profiler;
    // Interleaved ownership (element i belongs to thread i % P): every
    // neighbour read crosses a thread boundary, like SPLASH's
    // non-contiguous partitions.
    const auto parties = static_cast<std::size_t>(team.size());
    for (int s = 0; s < sweeps; ++s) {
      {
        COMMSCOPE_LOOP(sink, tid, "composite", "stencil");
        for (std::size_t i = static_cast<std::size_t>(tid); i < items;
             i += parties) {
          const std::size_t l = i == 0 ? items - 1 : i - 1;
          const std::size_t r = i + 1 == items ? 0 : i + 1;
          sink.read(tid, &field[l]);
          sink.read(tid, &field[r]);
          sink.write(tid, &next[i]);
          next[i] = 0.5 * (field[l] + field[r]);
        }
      }
      team.barrier().arrive_and_wait();
      {
        COMMSCOPE_LOOP(sink, tid, "composite", "copy");
        for (std::size_t i = static_cast<std::size_t>(tid); i < items;
             i += parties) {
          sink.read(tid, &next[i]);
          sink.write(tid, &field[i]);
          field[i] = next[i];
        }
      }
      team.barrier().arrive_and_wait();
    }
    {
      COMMSCOPE_LOOP(sink, tid, "composite", "gather");
      double sum = 0.0;
      for (std::size_t i = 0; i < items; ++i) {
        sink.read(tid, &field[i]);
        sum += field[i];
      }
      partial[static_cast<std::size_t>(tid)] = sum;
      sink.write(tid, &partial[static_cast<std::size_t>(tid)]);
    }
  });
  profiler.finalize();
}

}  // namespace

int main() {
  const int threads = cs::env_threads(8);
  cb::banner("Section V.A.4: dynamic behaviour / phase detection", threads,
             cs::env_scale());

  // --- composite program ----------------------------------------------------
  cc::ProfilerOptions o;
  o.max_threads = threads;
  o.signature_slots = 1 << 18;
  o.phase_window_bytes = 8 * 1024;
  cc::Profiler profiler(o);
  ct::ThreadTeam team(threads);
  run_composite(profiler, team, 4096, 4);

  const std::vector<cc::Matrix> windows = profiler.phase_timeline();
  const std::vector<cc::Phase> phases = cc::detect_phases(windows, 0.75, cc::PhaseMetric::kOffsetCosine);
  std::cout << "Composite (stencil -> all-to-all): " << windows.size()
            << " windows, " << phases.size() << " phases detected\n";

  cp::GeneratorOptions gen;
  gen.threads = threads;
  cp::NearestCentroidClassifier clf;
  clf.train(cp::featurize(cp::make_corpus(40, gen, 42)));

  cs::Table table({"phase", "windows", "volume", "classified as"});
  for (std::size_t p = 0; p < phases.size(); ++p) {
    const cc::Phase& ph = phases[p];
    table.add_row({std::to_string(p + 1),
                   std::to_string(ph.first_window) + ".." +
                       std::to_string(ph.last_window),
                   cs::Table::bytes(ph.pattern.total()),
                   cp::to_string(clf.predict(ph.pattern.trimmed(threads)))});
  }
  const cc::Matrix whole = profiler.communication_matrix().trimmed(threads);
  table.add_row({"whole-run (static baseline)", "-",
                 cs::Table::bytes(whole.total()),
                 cp::to_string(clf.predict(whole))});
  table.print(std::cout);

  // Phase-similarity structure: adjacent windows inside a phase are similar,
  // across the boundary they are not.
  double min_intra = 1.0;
  double boundary = 1.0;
  for (std::size_t w = 1; w < windows.size(); ++w) {
    const double sim = cs::cosine_similarity(
        cc::offset_signature(windows[w - 1]), cc::offset_signature(windows[w]));
    bool same_phase = false;
    for (const cc::Phase& ph : phases) {
      if (w - 1 >= ph.first_window && w <= ph.last_window) same_phase = true;
    }
    if (same_phase) {
      min_intra = std::min(min_intra, sim);
    } else {
      boundary = std::min(boundary, sim);
    }
  }
  std::cout << "\nmin intra-phase window similarity: "
            << cs::Table::num(min_intra, 3)
            << ", phase-boundary similarity: " << cs::Table::num(boundary, 3)
            << "\n";

  // DVFS application (Section III.A): plan frequency levels per phase from
  // communication intensity and report the projected energy saving.
  const commscope::power::DvfsPlan dvfs = commscope::power::plan_dvfs(
      windows, profiler.phase_window_accesses());
  std::cout << "\nDVFS plan from the phase timeline:\n" << dvfs.to_string();
  std::cout << "(paper cites ~30% power reduction from slowing the processor "
               "during detected communication phases)\n";

  const bool ok = phases.size() >= 2 && boundary < min_intra;
  std::cout << "Reproduced: the run decomposes into distinct communication "
               "phases that a whole-run matrix would blur -> "
            << (ok ? "HOLDS" : "VIOLATED") << "\n";
  return ok ? 0 : 1;
}
