// Concurrency-design ablation (google-benchmark).
//
// Section IV.D.3: "the signature memory is completely shared with all of the
// target program's threads. Hence, there is a high risk of contention
// between threads. We have used C++11 lock-free primitives for implementing
// signature memory arrays to ensure preventing data race among threads."
// This bench contrasts the lock-free detector against a globally-locked
// variant of the same algorithm under multi-threaded access, and the
// lock-free communication matrix against a mutex-guarded one.
#include <benchmark/benchmark.h>

#include <mutex>
#include <vector>

#include "core/comm_matrix.hpp"
#include "core/raw_detector.hpp"

namespace cc = commscope::core;

namespace {

std::vector<std::uintptr_t> make_addresses(std::size_t n) {
  std::vector<std::uintptr_t> addrs(n);
  std::uint64_t state = 777;
  for (std::size_t i = 0; i < n; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    addrs[i] = 0x20000000 + (state >> 30) % (n * 2) * 8;
  }
  return addrs;
}

/// Globally-locked strawman: the same Algorithm 1 behind one mutex.
class LockedDetector {
 public:
  LockedDetector() : det_(1 << 18, 32, 0.001) {}
  std::optional<int> on_read(std::uintptr_t addr, int tid) {
    std::lock_guard lock(mu_);
    return det_.on_read(addr, tid);
  }
  void on_write(std::uintptr_t addr, int tid) {
    std::lock_guard lock(mu_);
    det_.on_write(addr, tid);
  }

 private:
  std::mutex mu_;
  cc::AsymmetricDetector det_;
};

template <typename Detector>
void run_contended(benchmark::State& state, Detector& det) {
  const auto addrs = make_addresses(2048);
  const int tid = static_cast<int>(state.thread_index());
  for (auto _ : state) {
    for (std::size_t i = 0; i < addrs.size(); ++i) {
      if (i % 4 == 0) {
        det.on_write(addrs[i], tid);
      } else {
        benchmark::DoNotOptimize(det.on_read(addrs[i], tid));
      }
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(addrs.size()));
}

void BM_LockFreeDetector(benchmark::State& state) {
  // Function-local static: initialized once under the magic-static lock and
  // shared by all benchmark threads (never torn down — teardown would race
  // with threads still draining their iteration loops).
  static cc::AsymmetricDetector det(1 << 18, 32, 0.001);
  run_contended(state, det);
}

void BM_GloballyLockedDetector(benchmark::State& state) {
  static LockedDetector det;
  run_contended(state, det);
}

void BM_LockFreeCommMatrix(benchmark::State& state) {
  static cc::CommMatrix m(32);
  const int tid = static_cast<int>(state.thread_index());
  for (auto _ : state) {
    for (int i = 0; i < 1024; ++i) m.add(tid, (tid + i) % 32, 8);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}

struct LockedMatrix {
  explicit LockedMatrix(int n) : matrix(n) {}
  std::mutex mu;
  cc::Matrix matrix;
  void add(int p, int c, std::uint64_t b) {
    std::lock_guard lock(mu);
    matrix.at(p, c) += b;
  }
};

void BM_MutexCommMatrix(benchmark::State& state) {
  static LockedMatrix m(32);
  const int tid = static_cast<int>(state.thread_index());
  for (auto _ : state) {
    for (int i = 0; i < 1024; ++i) m.add(tid, (tid + i) % 32, 8);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}

}  // namespace

BENCHMARK(BM_LockFreeDetector)->Threads(1)->Threads(4)->UseRealTime();
BENCHMARK(BM_GloballyLockedDetector)->Threads(1)->Threads(4)->UseRealTime();
BENCHMARK(BM_LockFreeCommMatrix)->Threads(1)->Threads(4)->UseRealTime();
BENCHMARK(BM_MutexCommMatrix)->Threads(1)->Threads(4)->UseRealTime();
