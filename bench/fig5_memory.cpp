// Figure 5 reproduction: profiler memory consumption per SPLASH app, for
// DiscoPoP (signature), Memcheck, Helgrind, Helgrind+ (shadow-memory laws)
// and IPM (event log) — at two input scales (5a: simdev, 5b: simlarge).
//
// Paper claims reproduced: "shadow memory approach[es] consume more memory
// as the program size grows. However, DiscoPoP memory consumption remains
// the same disregard[ing] the program's memory allocations." Memory is each
// profiler's own internal byte accounting (DESIGN.md §3 explains why RSS is
// not used).
#include "bench_common.hpp"

#include <algorithm>
#include <stdexcept>

#include "baseline/ipm_profiler.hpp"
#include "baseline/shadow_profiler.hpp"

namespace cb = commscope::bench;
namespace cbl = commscope::baseline;
namespace cs = commscope::support;
namespace cw = commscope::workloads;

namespace {

struct Row {
  std::uint64_t discopop = 0;
  std::uint64_t memcheck = 0;
  std::uint64_t helgrind = 0;
  std::uint64_t helgrind_plus = 0;
  std::uint64_t ipm = 0;
};

Row measure(const cw::Workload& w, cs::Scale scale,
            commscope::threading::ThreadTeam& team, int threads) {
  Row row;
  {
    auto sig = cb::make_profiler(threads);
    if (!w.run(scale, team, sig.get()).ok) throw std::runtime_error(w.name);
    row.discopop = sig->memory_bytes();
  }
  // One exact shadow run measures pages; personas scale the shadow law.
  {
    cbl::ShadowProfiler shadow(threads, cbl::kMemcheck);
    if (!w.run(scale, team, &shadow).ok) throw std::runtime_error(w.name);
    const std::uint64_t pages = shadow.pages_touched() * 4096;
    row.memcheck = static_cast<std::uint64_t>(
        pages * cbl::kMemcheck.shadow_bytes_per_app_byte);
    row.helgrind = static_cast<std::uint64_t>(
        pages * cbl::kHelgrind.shadow_bytes_per_app_byte);
    row.helgrind_plus = static_cast<std::uint64_t>(
        pages * cbl::kHelgrindPlus.shadow_bytes_per_app_byte);
  }
  {
    cbl::IpmProfiler ipm(threads);
    if (!w.run(scale, team, &ipm).ok) throw std::runtime_error(w.name);
    row.ipm = ipm.memory_bytes();
  }
  return row;
}

void run_panel(const char* caption, cs::Scale scale, int threads) {
  std::cout << caption << "\n";
  commscope::threading::ThreadTeam team(threads);
  cs::Table table({"app", "DiscoPoP", "Memcheck", "Helgrind", "Helgrind+",
                   "IPM"});
  Row min_row;
  Row max_row;
  bool first = true;
  for (const cw::Workload& w : cw::registry()) {
    const Row r = measure(w, scale, team, threads);
    table.add_row({w.name, cs::Table::bytes(r.discopop),
                   cs::Table::bytes(r.memcheck), cs::Table::bytes(r.helgrind),
                   cs::Table::bytes(r.helgrind_plus), cs::Table::bytes(r.ipm)});
    if (first) {
      min_row = max_row = r;
      first = false;
    }
    min_row.discopop = std::min(min_row.discopop, r.discopop);
    max_row.discopop = std::max(max_row.discopop, r.discopop);
  }
  table.print(std::cout);
  std::cout << "DiscoPoP footprint spread across apps: "
            << cs::Table::bytes(min_row.discopop) << " .. "
            << cs::Table::bytes(max_row.discopop)
            << " (signature-bound, input-independent)\n\n";
}

}  // namespace

int main() {
  const cb::TraceOutFromEnv trace_out;
  const int threads = cs::env_threads(8);
  cb::banner("Figure 5: profiler memory consumption", threads,
             cs::Scale::kDev);
  run_panel("(a) simdev input size", cs::Scale::kDev, threads);
  run_panel("(b) simlarge input size", cs::Scale::kLarge, threads);
  std::cout
      << "Reproduced shape: shadow/log profilers grow with input size; the\n"
         "asymmetric-signature profiler's footprint is fixed by (slots, "
         "threads, FPRate)\nper Eq. 2 regardless of the application's "
         "allocations.\n";
  return 0;
}
