// Eq. 2 reproduction: the signature-memory size model vs the actual
// allocations of the implementation.
//
// Paper (Section V.A.2): SigMem(n,t) = n(4 + -t ln(FPRate) / (8 ln^2 2));
// with n = 10^7, t = 32, FPRate = 0.001 "around 580MB could be sufficient to
// perform the analysis for any program with moderate input sizes".
//
// The bench sweeps (n, t, FPRate), prints the model, and for tractable n
// instantiates the real signatures with every slot's bloom filter forced
// into existence to confirm the model's per-slot costs match the code.
#include "bench_common.hpp"

#include <array>

#include "sigmem/read_signature.hpp"
#include "sigmem/size_model.hpp"
#include "sigmem/write_signature.hpp"

namespace cs = commscope::support;
namespace sg = commscope::sigmem;

int main() {
  std::cout << "=== Eq. 2: SigMem(n, t) = n(4 + -t*ln(p)/(8*ln^2 2)) ===\n\n";

  cs::Table model_table({"slots n", "threads t", "FPRate p", "write bytes",
                         "read bytes", "total", "note"});
  struct Point {
    std::size_t n;
    int t;
    double p;
    const char* note;
  };
  const std::array<Point, 7> points{{{1'000'000, 32, 0.001, ""},
                                     {4'000'000, 32, 0.001, ""},
                                     {10'000'000, 32, 0.001,
                                      "paper's ~580MB reference"},
                                     {100'000'000, 32, 0.001, ""},
                                     {10'000'000, 8, 0.001, "fewer threads"},
                                     {10'000'000, 64, 0.001, "more threads"},
                                     {10'000'000, 32, 0.01, "looser FPR"}}};
  for (const Point& pt : points) {
    const sg::SigMemModel m = sg::sigmem_model(pt.n, pt.t, pt.p);
    model_table.add_row(
        {std::to_string(pt.n), std::to_string(pt.t), cs::Table::num(pt.p, 4),
         cs::Table::bytes(static_cast<std::uint64_t>(m.write_bytes)),
         cs::Table::bytes(static_cast<std::uint64_t>(m.read_bytes)),
         cs::Table::bytes(static_cast<std::uint64_t>(m.total())), pt.note});
  }
  model_table.print(std::cout);

  // Validate the model against actual allocations at a tractable n: force
  // every bloom filter live so the lazy implementation reaches the model's
  // fully-populated bound.
  std::cout << "\nModel vs implementation (fully populated signatures):\n";
  cs::Table impl_table({"slots n", "threads t", "model total", "actual bytes",
                        "actual/model"});
  for (const std::size_t n : {std::size_t{4096}, std::size_t{65536}}) {
    const int t = 32;
    const double p = 0.001;
    sg::WriteSignature ws(n);
    sg::ReadSignature rs(n, t, p);
    for (std::size_t s = 0; s < n; ++s) {
      ws.record(s, 1);
      rs.insert(s, 1);
    }
    const double model = sg::sigmem_model(n, t, p).total();
    const double actual =
        static_cast<double>(ws.byte_size() + rs.byte_size());
    impl_table.add_row({std::to_string(n), std::to_string(t),
                        cs::Table::bytes(static_cast<std::uint64_t>(model)),
                        cs::Table::bytes(static_cast<std::uint64_t>(actual)),
                        cs::Table::num(actual / model, 2)});
  }
  impl_table.print(std::cout);
  std::cout << "\nThe implementation adds first-level pointers (8B/slot) and "
               "bloom headers the closed-form model omits; the ratio is the "
               "constant-factor overhead of the lazy two-level design, and "
               "both scale identically in n, t and ln(1/p).\n";
  return 0;
}
