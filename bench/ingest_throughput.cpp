// Batched-ingest throughput sweep (the tentpole's acceptance bench).
//
// Records the access streams of Figure 4 workload replicas once, then
// replays the identical event sequence through fresh profilers at a sweep of
// micro-batch sizes, measuring single-thread ingest throughput — the
// quantity the batch layer attacks: per-event dispatch, region lookup and,
// via hash-ahead prefetching of the striped signature memories, the random
// cache misses that dominate Figure 4's slowdown.
//
// Replay is deterministic: each worker's recorded stream is consumed in
// fixed round-robin chunks with an on_drain() at every chunk boundary, so
// the global processing order is identical at every batch size and the
// resulting matrices must be BIT-IDENTICAL to the unbatched run — the sweep
// verifies that for every batch size before reporting a single number.
//
// Output: a human table plus BENCH_ingest.json (events/sec per batch size,
// speedup vs unbatched). $COMMSCOPE_BENCH_OUT overrides the JSON path.
#include "bench_common.hpp"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/region_tree.hpp"
#include "support/simd.hpp"

namespace cb = commscope::bench;
namespace cc = commscope::core;
namespace ci = commscope::instrument;
namespace cs = commscope::support;
namespace cw = commscope::workloads;

namespace {

// Recorded streams are structure-of-arrays — an address lane plus a packed
// meta lane (op kind in the top two bits, access size below) — so replay
// streams 12 bytes per event instead of a padded 16-byte record. The replay
// loop is inside the timed region, so every byte it streams and every
// branch it retires is measurement overhead diluting the batch-vs-inline
// ratio equally on both sides; keeping the harness lean keeps the reported
// speedup close to the profiler's own.
constexpr std::uint32_t kOpShift = 30;
constexpr std::uint32_t kSizeMask = (1u << kOpShift) - 1;
constexpr std::uint32_t kRead = 0;   // op field values
constexpr std::uint32_t kWrite = 1;
constexpr std::uint32_t kEnter = 2;
constexpr std::uint32_t kExit = 3;

struct Stream {
  std::vector<std::uintptr_t> addr;
  std::vector<std::uint32_t> meta;

  void push(std::uintptr_t a, std::uint32_t m) {
    addr.push_back(a);
    meta.push_back(m);
  }
  [[nodiscard]] std::size_t size() const { return meta.size(); }
};

/// Captures each worker's event stream into a private per-tid stream (the
/// workers only ever touch their own stream, so recording needs no locks).
class RecordingSink final : public ci::AccessSink {
 public:
  explicit RecordingSink(int threads) : streams_(std::size_t(threads)) {}

  void on_thread_begin(int) override {}
  void on_loop_enter(int tid, ci::LoopId id) override {
    streams_[std::size_t(tid)].push(id, kEnter << kOpShift);
  }
  void on_loop_exit(int tid) override {
    streams_[std::size_t(tid)].push(0, kExit << kOpShift);
  }
  void on_access(int tid, std::uintptr_t addr, std::uint32_t size,
                 ci::AccessKind kind) override {
    streams_[std::size_t(tid)].push(
        addr, (size & kSizeMask) |
                  ((kind == ci::AccessKind::kWrite ? kWrite : kRead)
                   << kOpShift));
  }

  [[nodiscard]] const std::vector<Stream>& streams() const { return streams_; }
  [[nodiscard]] std::uint64_t total() const {
    std::uint64_t n = 0;
    for (const auto& s : streams_) n += s.size();
    return n;
  }

 private:
  std::vector<Stream> streams_;
};

/// Replays the recorded streams into `prof` on the calling thread: fixed
/// round-robin chunks per tid with a drain at every chunk boundary. The
/// order is a pure function of the recording, so every batch size processes
/// the exact same event sequence.
void replay(const std::vector<Stream>& streams, cc::Profiler& prof) {
  constexpr std::size_t kChunk = 256;  // >= kMaxBatchSize: full batches fit
  const int threads = static_cast<int>(streams.size());
  for (int t = 0; t < threads; ++t) prof.on_thread_begin(t);
  std::vector<std::size_t> cursor(streams.size(), 0);
  bool more = true;
  while (more) {
    more = false;
    for (int t = 0; t < threads; ++t) {
      const Stream& s = streams[std::size_t(t)];
      const std::uintptr_t* addr = s.addr.data();
      const std::uint32_t* meta = s.meta.data();
      std::size_t& i = cursor[std::size_t(t)];
      const std::size_t end = std::min(s.size(), i + kChunk);
      for (; i < end; ++i) {
        const std::uint32_t m = meta[i];
        const std::uint32_t op = m >> kOpShift;
        if (op <= kWrite) [[likely]] {
          prof.on_access(t, addr[i], m & kSizeMask,
                         op == kWrite ? ci::AccessKind::kWrite
                                      : ci::AccessKind::kRead);
        } else if (op == kEnter) {
          prof.on_loop_enter(t, static_cast<ci::LoopId>(addr[i]));
        } else {
          prof.on_loop_exit(t);
        }
      }
      prof.on_drain(t);
      if (i < s.size()) more = true;
    }
  }
  prof.finalize();
}

/// Every observable output must match cell-for-cell and node-for-node.
bool identical(const cc::Profiler& a, const cc::Profiler& b) {
  if (!(a.communication_matrix() == b.communication_matrix())) return false;
  const auto as = a.stats();
  const auto bs = b.stats();
  if (as.accesses != bs.accesses || as.reads != bs.reads ||
      as.writes != bs.writes || as.dependencies != bs.dependencies) {
    return false;
  }
  const auto an = a.regions().preorder();
  const auto bn = b.regions().preorder();
  if (an.size() != bn.size()) return false;
  for (std::size_t i = 0; i < an.size(); ++i) {
    if (an[i]->loop() != bn[i]->loop()) return false;
    if (!(an[i]->direct() == bn[i]->direct())) return false;
  }
  return true;
}

}  // namespace

int main() {
  const cb::TraceOutFromEnv trace_out;
  const int threads = cs::env_threads(8);
  const cs::Scale scale = cs::env_scale();
  cb::banner("Batched ingest throughput (events/sec, batch-size sweep)",
             threads, scale);

  // Record once. A communication-heavy mix from the Figure 4 registry keeps
  // the replay representative of the workloads whose slowdown the batch
  // layer targets.
  const char* const names[] = {"fft", "ocean_cp", "water_nsq"};
  commscope::threading::ThreadTeam team(threads);
  RecordingSink recording(threads);
  for (const char* name : names) {
    const cw::Workload* w = cw::find(name);
    if (w == nullptr || !w->run(scale, team, &recording).ok) {
      std::cerr << name << ": recording FAILED\n";
      return 1;
    }
  }
  const std::uint64_t events = recording.total();
  std::cout << "recorded " << events << " events from fft+ocean_cp+water_nsq\n"
            << "replay: single thread, round-robin chunks of 256, drain at "
               "every chunk boundary; hash kernel: "
            << cs::simd_level_name() << "\n\n";

  const std::uint32_t sweep[] = {0, 8, 16, 32, 64, 128, 256};
  constexpr std::size_t kConfigs = std::size(sweep);
  // Timesharing interference on the bench box arrives in multi-hundred-ms
  // bursts, so reps are interleaved round-robin across the sweep (a burst
  // lands on one rep of one config, not on every rep of one config) and the
  // per-config minimum — the interference-free estimate — is reported.
  // $COMMSCOPE_BENCH_REPS lowers/raises the rep count (CI runs fewer reps
  // to keep the perf gate fast; the committed baseline uses the default).
  const int reps = [] {
    const char* env = std::getenv("COMMSCOPE_BENCH_REPS");
    const int v = (env != nullptr && *env != '\0') ? std::atoi(env) : 0;
    return v > 0 ? v : 5;
  }();

  auto run_once = [&](std::uint32_t batch, double& seconds) {
    auto prof = cb::make_profiler(threads);
    cc::ProfilerOptions o = prof->options();
    o.batch_size = batch;
    prof = std::make_unique<cc::Profiler>(o);
    seconds = cb::time_seconds([&] { replay(recording.streams(), *prof); });
    return prof;
  };

  double best[kConfigs];
  std::unique_ptr<cc::Profiler> result[kConfigs];
  for (std::size_t i = 0; i < kConfigs; ++i) best[i] = 1e30;
  for (int rep = 0; rep < reps; ++rep) {
    for (std::size_t i = 0; i < kConfigs; ++i) {
      double t = 0.0;
      auto p = run_once(sweep[i], t);
      if (t < best[i]) {
        best[i] = t;
      }
      if (rep == 0) result[i] = std::move(p);  // matrices are deterministic
    }
  }

  double base_rate = 0.0;
  cs::Table table(
      {"batch", "best (ms)", "events/sec", "speedup", "bit-identical"});
  struct Point {
    std::uint32_t batch;
    double seconds;
    double rate;
    double speedup;
    bool identical;
  };
  std::vector<Point> points;
  bool all_identical = true;

  for (std::size_t i = 0; i < kConfigs; ++i) {
    const std::uint32_t batch = sweep[i];
    const double rate = static_cast<double>(events) / best[i];
    if (batch == 0) base_rate = rate;
    const bool same = batch == 0 || identical(*result[0], *result[i]);
    all_identical = all_identical && same;
    const double speedup = rate / base_rate;
    points.push_back(Point{batch, best[i], rate, speedup, same});
    table.add_row({std::to_string(batch), cs::Table::num(best[i] * 1e3, 2),
                   cs::Table::num(rate / 1e6, 2) + "M",
                   cs::Table::num(speedup, 2) + "x", same ? "yes" : "NO"});
  }
  table.print(std::cout);

  double at64 = 0.0;
  for (const Point& p : points) {
    if (p.batch == 64) at64 = p.speedup;
  }
  std::cout << "\nspeedup at batch 64: " << cs::Table::num(at64, 2)
            << "x (target >= 2x); matrices "
            << (all_identical ? "bit-identical across the sweep"
                              : "DIVERGED — batching bug")
            << "\n";

  const char* out_env = std::getenv("COMMSCOPE_BENCH_OUT");
  const std::string out_path =
      (out_env != nullptr && *out_env != '\0') ? out_env : "BENCH_ingest.json";
  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  out << "{\n  \"bench\": \"ingest_throughput\",\n"
      << "  \"workloads\": [\"fft\", \"ocean_cp\", \"water_nsq\"],\n"
      << "  \"scale\": \"" << cs::to_string(scale) << "\",\n"
      << "  \"recorded_threads\": " << threads << ",\n"
      << "  \"simd\": \"" << cs::simd_level_name() << "\",\n"
      << "  \"events\": " << events << ",\n"
      << "  \"all_bit_identical\": " << (all_identical ? "true" : "false")
      << ",\n  \"speedup_at_64\": " << at64 << ",\n  \"sweep\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    out << "    {\"batch\": " << p.batch << ", \"seconds\": " << p.seconds
        << ", \"events_per_sec\": " << p.rate << ", \"speedup\": " << p.speedup
        << ", \"bit_identical\": " << (p.identical ? "true" : "false") << "}"
        << (i + 1 < points.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "wrote " << out_path << "\n";

  return all_identical ? 0 : 1;
}
