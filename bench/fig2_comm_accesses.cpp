// Figure 2 reproduction: which accesses to one shared memory location count
// as communication.
//
// The paper's Figure 2 shows a timeline of reads/writes by three threads on
// a single address, with "communicating accesses shown in black [and]
// non-communicating accesses in gray": a read communicates iff it is the
// thread's first read of the location since its last (foreign) write —
// rereads, self-reads and reads before any write are gray. This bench
// scripts such a timeline through Algorithm 1 (both backends) and prints the
// classification of every access, machine-checking the expected black/gray
// pattern.
#include "bench_common.hpp"

#include <array>

#include "core/raw_detector.hpp"
#include "sigmem/exact_signature.hpp"

namespace cc = commscope::core;
namespace cs = commscope::support;
namespace sg = commscope::sigmem;

namespace {

struct Step {
  int tid;
  char op;  // 'R' or 'W'
  bool communicates;  // expected classification (the figure's black marks)
  const char* why;
};

// A Figure-2-style timeline on one location (threads T0..T2).
constexpr std::array<Step, 12> kTimeline{{
    {1, 'R', false, "read before any write"},
    {0, 'W', false, "writes never consume"},
    {0, 'R', false, "self-read of own write"},
    {1, 'R', true, "first read after T0's write"},
    {1, 'R', false, "re-read, already counted"},
    {2, 'R', true, "first read by another thread"},
    {2, 'W', false, "write invalidates reader set"},
    {1, 'R', true, "first read after T2's write"},
    {1, 'R', false, "re-read"},
    {0, 'R', true, "T0 consumes T2's write"},
    {0, 'W', false, "overwrite"},
    {2, 'R', true, "T2 consumes T0's new value"},
}};

}  // namespace

int main() {
  std::cout << "=== Figure 2: communicating vs non-communicating accesses on "
               "one location ===\n\n";
  constexpr std::uintptr_t kAddr = 0xCAFE000;

  cc::AsymmetricDetector sig(1 << 12, 8, 1e-9);
  sg::ExactSignature exact(8);

  cs::Table table({"#", "thread", "op", "Algorithm 1", "expected", "reason"});
  bool all_match = true;
  int step_no = 1;
  for (const Step& s : kTimeline) {
    bool sig_comm = false;
    bool exact_comm = false;
    if (s.op == 'R') {
      sig_comm = sig.on_read(kAddr, s.tid).has_value();
      exact_comm = exact.on_read(kAddr, s.tid).has_value();
    } else {
      sig.on_write(kAddr, s.tid);
      exact.on_write(kAddr, s.tid);
    }
    const bool match = sig_comm == s.communicates && exact_comm == s.communicates;
    all_match = all_match && match;
    table.add_row({std::to_string(step_no++), "T" + std::to_string(s.tid),
                   std::string(1, s.op),
                   sig_comm ? "BLACK (communicates)" : "gray",
                   s.communicates ? "BLACK" : "gray", s.why});
  }
  table.print(std::cout);
  std::cout << "\nSignature and exact backends both reproduce the figure's "
               "classification: " << (all_match ? "HOLDS" : "VIOLATED")
            << "\n";
  return all_match ? 0 : 1;
}
