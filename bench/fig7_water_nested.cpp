// Figure 7 reproduction: nested communication patterns in water_nsquared.
//
// The paper shows water_nsquared's program matrix decomposed into INTERF(),
// MDMAIN() and POTENG() region matrices (with two INTERF instances from
// different nesting contexts). This bench prints those matrices from the
// replica and verifies the decomposition identity.
#include "bench_common.hpp"

#include <set>
#include <string>

#include "core/thread_load.hpp"

namespace cb = commscope::bench;
namespace cc = commscope::core;
namespace cs = commscope::support;
namespace cw = commscope::workloads;

int main() {
  const int threads = cs::env_threads(8);
  const cs::Scale scale = cs::env_scale();
  cb::banner("Figure 7: nested communication patterns in water_nsquared",
             threads, scale);

  auto profiler = cb::make_profiler(threads, cc::Backend::kExact);
  commscope::threading::ThreadTeam team(threads);
  if (!cw::find("water_nsq")->run(scale, team, profiler.get()).ok) {
    std::cerr << "water_nsq verification FAILED\n";
    return 1;
  }
  profiler->finalize();

  const cc::Matrix whole = profiler->communication_matrix().trimmed(threads);
  cs::print_heatmap(std::cout, whole.cells(),
                    static_cast<std::size_t>(whole.size()),
                    "(water_nsquared) communication matrix");

  const std::set<std::string> figure_regions{"water:MDMAIN", "water:INTERF",
                                             "water:POTENG"};
  bool saw_interf = false;
  bool sum_property = true;
  for (const cc::RegionNode* node : profiler->regions().preorder()) {
    cc::Matrix reconstructed = node->direct();
    for (const cc::RegionNode* c : node->children()) {
      reconstructed += c->aggregate();
    }
    if (!(reconstructed == node->aggregate())) sum_property = false;

    if (!figure_regions.count(node->label())) continue;
    const cc::Matrix m = node->aggregate().trimmed(threads);
    if (m.total() == 0) continue;
    if (node->label() == "water:INTERF") saw_interf = true;
    const auto load = cc::thread_load(m);
    cs::print_heatmap(
        std::cout, m.cells(), static_cast<std::size_t>(m.size()),
        node->label() + " (imbalance=" +
            cs::Table::num(cc::load_imbalance(load), 2) + ")");
  }

  cb::print_perf_grounding(*profiler, std::cout);

  std::cout << "Parent = sum of children: "
            << (sum_property ? "HOLDS" : "VIOLATED") << "\n";
  std::cout << "Reproduced: INTERF is the dense all-to-all force exchange; "
               "POTENG is the all-to-one energy reduction; MDMAIN aggregates "
               "its children.\n";
  return (sum_property && saw_interf) ? 0 : 1;
}
