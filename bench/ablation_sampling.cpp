// Future-work ablation: burst sampling vs full instrumentation.
//
// Section VII: "we plan to apply sampling technique to reduce the overhead
// of instrumentation". This bench quantifies what that buys: for a duty
// -cycle ladder it reports the runtime slowdown relative to native, the
// scaled communication-volume error against the full profile, and the
// matrix-shape similarity (cosine) — showing that a ~1/8 duty cycle recovers
// most of the overhead while preserving the pattern.
#include "bench_common.hpp"

#include <array>
#include <memory>

#include "instrument/sampling.hpp"
#include "support/stats.hpp"

namespace cb = commscope::bench;
namespace cc = commscope::core;
namespace ci = commscope::instrument;
namespace cs = commscope::support;
namespace cw = commscope::workloads;

int main() {
  const int threads = cs::env_threads(8);
  const cs::Scale scale = cs::env_scale();
  cb::banner("Future work: burst-sampling overhead/accuracy trade-off",
             threads, scale);

  commscope::threading::ThreadTeam team(threads);
  const std::array<const char*, 3> apps{"ocean_ncp", "fft", "water_nsq"};

  for (const char* app : apps) {
    const cw::Workload* w = cw::find(app);
    double native = 1e9;
    for (int rep = 0; rep < 2; ++rep) {
      native = std::min(native,
                        cb::time_seconds([&] { w->run(scale, team, nullptr); }));
    }

    // Full profile = reference.
    auto full = cb::make_profiler(threads);
    const double full_time =
        cb::time_seconds([&] { w->run(scale, team, full.get()); });
    const auto full_matrix = full->communication_matrix();
    const auto full_total = static_cast<double>(full_matrix.total());

    cs::Table table({"duty cycle", "slowdown", "scaled volume error",
                     "matrix cosine"});
    table.add_row({"1 (full)", cs::Table::num(full_time / native, 1) + "x",
                   "0.0%", "1.000"});

    for (const std::uint32_t off : {1024u, 3072u, 7168u, 31744u}) {
      auto prof = cb::make_profiler(threads);
      ci::SamplingSink sampler(*prof, {.burst_on = 1024, .burst_off = off});
      const double t =
          cb::time_seconds([&] { w->run(scale, team, &sampler); });
      const double scaled =
          static_cast<double>(prof->communication_matrix().total()) *
          sampler.scale_factor();
      const double err =
          full_total > 0 ? std::abs(scaled - full_total) / full_total : 0.0;
      const double shape = cs::cosine_similarity(
          full_matrix.normalized(), prof->communication_matrix().normalized());
      table.add_row(
          {"1/" + std::to_string((1024 + off) / 1024),
           cs::Table::num(t / native, 1) + "x",
           cs::Table::num(err * 100.0, 1) + "%", cs::Table::num(shape, 3)});
    }
    std::cout << app << ":\n";
    table.print(std::cout);
    std::cout << "\n";
  }

  std::cout
      << "Takeaway: overhead falls roughly with the duty cycle, and the\n"
         "matrix *shape* (what pattern detection and thread mapping consume)\n"
         "stays stable at 1/8 duty and below. Volume is biased low beyond\n"
         "the duty-cycle correction because a dependency survives only when\n"
         "its producing write AND first consuming read both land in\n"
         "on-bursts — the error a production deployment would calibrate.\n";
  return 0;
}
