// Table I reproduction: the six profiler properties of Cruz et al. compared
// across DiscoPoP (CommScope), TLB-based mapping, IPM and SD3.
//
// The qualitative rows are the paper's; the quantitative cells (memory,
// runtime overhead, matrix availability) are *measured* by running the same
// two workloads under the in-tree implementations of each architecture
// (signature profiler, IPM-style log, SD3-style stride profiler; the TLB
// approach is hardware/OS-bound and keeps the paper's qualitative entries).
#include "bench_common.hpp"

#include <stdexcept>

#include "baseline/ipm_profiler.hpp"
#include "baseline/sd3_profiler.hpp"

namespace cb = commscope::bench;
namespace cbl = commscope::baseline;
namespace cs = commscope::support;
namespace cw = commscope::workloads;

int main() {
  const int threads = cs::env_threads(8);
  const cs::Scale scale = cs::env_scale();
  cb::banner("Table I: profiler properties (Cruz et al.)", threads, scale);

  commscope::threading::ThreadTeam team(threads);
  const cw::Workload* fft = cw::find("fft");
  const cw::Workload* radix = cw::find("radix");

  // Measured cells.
  double native = 0.0;
  for (const cw::Workload* w : {fft, radix}) {
    native += cb::time_seconds([&] {
      if (!w->run(scale, team, nullptr).ok) throw std::runtime_error(w->name);
    });
  }

  auto disco = cb::make_profiler(threads);
  const double disco_time = cb::time_seconds([&] {
    fft->run(scale, team, disco.get());
    radix->run(scale, team, disco.get());
  });
  const std::uint64_t disco_mem = disco->memory_bytes();

  cbl::IpmProfiler ipm(threads);
  const double ipm_time = cb::time_seconds([&] {
    fft->run(scale, team, &ipm);
    radix->run(scale, team, &ipm);
    ipm.finalize();
  });
  const std::uint64_t ipm_mem = ipm.memory_bytes();

  cbl::Sd3Profiler sd3(threads);
  const double sd3_time = cb::time_seconds([&] {
    fft->run(scale, team, &sd3);
    radix->run(scale, team, &sd3);
    sd3.finalize();
  });
  const std::uint64_t sd3_mem = sd3.memory_bytes();

  auto x = [&](double t) { return cs::Table::num(t / native, 1) + "x"; };

  cs::Table table({"criteria", "DiscoPoP", "TLB", "IPM", "SD3"});
  table.add_row({"Real-time detection", "Yes", "Yes", "No (post-mortem)",
                 "Full support"});
  table.add_row({"Memory overhead (measured)",
                 cs::Table::bytes(disco_mem) + " fixed", "n/a (HW)",
                 cs::Table::bytes(ipm_mem) + " grows w/ events",
                 cs::Table::bytes(sd3_mem) + " grows w/ input"});
  table.add_row({"Runtime overhead (measured)", x(disco_time), "~1x (HW ctrs)",
                 x(ipm_time), x(sd3_time)});
  table.add_row({"Pattern accuracy", "Precise*", "Approximate", "Precise",
                 "n/a"});
  table.add_row({"Dynamic behavior", "Yes (per-loop, phases)", "Partial", "No",
                 "No"});
  table.add_row({"Resiliency to FP communication", "Yes (first-touch)", "Yes",
                 "n/a", "Yes"});
  table.add_row({"Implementation independence", "LLVM-based instrumentation",
                 "HW/OS dependent", "MPI applications only",
                 "LLVM-based instrumentation"});
  table.print(std::cout);
  std::cout << "* with enough signature slots available (paper's footnote); "
               "see the FPR bench for the degradation curve.\n\n";
  std::cout << "Matrix availability: DiscoPoP had per-loop matrices DURING "
               "the run; IPM produced its matrix only after finalize() "
               "replayed " << ipm.record_count() << " logged records; SD3 "
               "after stride intersection.\n";
  std::cout << "Paper reference overheads: DiscoPoP 225x avg (full-IR "
               "instrumentation), SD3 29x-289x, IPM n/a.\n";
  return 0;
}
