// Section VI reproduction: parallel-pattern detection from communication
// matrices with supervised learning.
//
// Paper: "three classes of parallel patterns could be identified ... Linear
// algebra, spectral methods, n-body, structured grids, master/worker,
// pipeline and synchronization barriers were among the patterns we could
// identify ... We succeeded to detect these pattern[s] with more than 97%
// accuracy with the aid of algorithmic methods and supervised learning. We
// also found out that the negative effect of false positives could be
// compensated by using machine learning classification methods."
//
// The bench trains on a synthetic corpus, evaluates held-out instances for
// both classifiers, runs the false-positive-contamination robustness sweep,
// and finally labels the real profiled workload matrices.
#include "bench_common.hpp"

#include <vector>

#include "patterns/classifier.hpp"
#include "patterns/decision_tree.hpp"

namespace cb = commscope::bench;
namespace cc = commscope::core;
namespace cp = commscope::patterns;
namespace cs = commscope::support;
namespace cw = commscope::workloads;

int main() {
  const int threads = cs::env_threads(16);
  cb::banner("Section VI: pattern classification accuracy", threads,
             cs::env_scale());

  cp::GeneratorOptions opts;
  opts.threads = threads;
  opts.jitter = 0.25;
  opts.background = 0.05;

  const auto train = cp::featurize(cp::make_corpus(60, opts, 111));
  const auto test = cp::featurize(cp::make_corpus(40, opts, 222));

  cp::NearestCentroidClassifier centroid;
  centroid.train(train);
  cp::KnnClassifier knn(5);
  knn.train(train);
  cp::DecisionTreeClassifier tree;
  tree.train(train);

  const cp::Evaluation ev_centroid = cp::evaluate(centroid, test);
  const cp::Evaluation ev_knn = cp::evaluate(knn, test);
  const cp::Evaluation ev_tree = cp::evaluate(tree, test);

  cs::Table acc({"classifier", "held-out accuracy", "paper claim"});
  acc.add_row({"nearest-centroid",
               cs::Table::num(ev_centroid.accuracy * 100.0, 1) + "%", ">97%"});
  acc.add_row({"kNN (k=5)", cs::Table::num(ev_knn.accuracy * 100.0, 1) + "%",
               ">97%"});
  acc.add_row({"CART decision tree (" + std::to_string(tree.node_count()) +
                   " nodes)",
               cs::Table::num(ev_tree.accuracy * 100.0, 1) + "%", ">97%"});
  acc.print(std::cout);
  std::cout << "\nkNN confusion matrix:\n" << ev_knn.to_string() << "\n";

  // False-positive robustness sweep: train clean, test at rising
  // contamination levels (emulating shrinking signature sizes).
  std::cout << "FP-contamination robustness (train clean, test dirty):\n";
  cs::Table rob({"background rate", "kNN accuracy"});
  bool robust = true;
  for (const double bg : {0.0, 0.1, 0.2, 0.3}) {
    cp::GeneratorOptions dirty = opts;
    dirty.background = bg;
    dirty.background_level = 0.15;
    const cp::Evaluation ev = cp::evaluate(
        knn, cp::featurize(cp::make_corpus(25, dirty, 333)));
    rob.add_row({cs::Table::num(bg * 100.0, 0) + "%",
                 cs::Table::num(ev.accuracy * 100.0, 1) + "%"});
    if (bg <= 0.2 && ev.accuracy < 0.9) robust = false;
  }
  rob.print(std::cout);

  // Label the real workload matrices.
  std::cout << "\nReal profiled workload matrices:\n";
  commscope::threading::ThreadTeam team(threads);
  cs::Table real({"workload", "detected pattern", "expected family"});
  const std::pair<const char*, const char*> expectations[] = {
      {"ocean_cp", "structured-grid"}, {"fft", "spectral"},
      {"water_nsq", "n-body"},         {"lu_ncb", "linear-algebra"},
      {"raytrace", "master-worker"},   {"radiosity", "n-body (dense)"}};
  for (const auto& [name, expected] : expectations) {
    auto prof = cb::make_profiler(threads, cc::Backend::kExact);
    if (!cw::find(name)->run(cs::Scale::kDev, team, prof.get()).ok) {
      std::cerr << name << " verification FAILED\n";
      return 1;
    }
    const cc::Matrix m = prof->communication_matrix().trimmed(threads);
    real.add_row({name, cp::to_string(knn.predict(m)), expected});
  }
  real.print(std::cout);

  const bool ok = ev_centroid.accuracy >= 0.97 && ev_knn.accuracy >= 0.97 &&
                  ev_tree.accuracy >= 0.95 && robust;
  std::cout << "\nReproduced: >97% held-out accuracy and ML-compensated "
               "false-positive noise -> "
            << (ok ? "HOLDS" : "VIOLATED") << "\n";
  return ok ? 0 : 1;
}
