// Section V.A.3 reproduction: false-positive rate vs signature size.
//
// Paper: "We evaluated the false positive rate (FPR) under four different
// signature sizes by implementing a perfect signature memory without any
// collision to be the baseline for FPR comparison. When using 1.0E+6 slots,
// the average FPR [is] 85.8% ... 4.0E+6 ... 22.0% ... 1.0E+7 [and] 1.0E+8
// ... 8.4% and 2.1%."
//
// FPR here = spurious dependency volume / true dependency volume, measured
// by running each workload under the exact backend (ground truth) and under
// the asymmetric signature at four slot counts. The paper's absolute slot
// counts go with full-application footprints; the kernel replicas touch
// proportionally fewer addresses, so the sweep uses the same ratio ladder
// (x1, x4, x10, x100 relative to a deliberately undersized base) and
// reproduces the FPR collapse from ~80%+ to a few percent.
#include "bench_common.hpp"

#include <array>
#include <stdexcept>
#include <vector>

#include "support/stats.hpp"

namespace cb = commscope::bench;
namespace cc = commscope::core;
namespace cs = commscope::support;
namespace cw = commscope::workloads;

namespace {

/// Spurious-volume FPR of one workload at one slot count.
double measure_fpr(const cw::Workload& w, cs::Scale scale,
                   commscope::threading::ThreadTeam& team, int threads,
                   std::size_t slots) {
  auto exact = cb::make_profiler(threads, cc::Backend::kExact);
  if (!w.run(scale, team, exact.get()).ok) throw std::runtime_error(w.name);
  const double truth =
      static_cast<double>(exact->communication_matrix().total());

  auto sig =
      cb::make_profiler(threads, cc::Backend::kAsymmetricSignature, slots);
  if (!w.run(scale, team, sig.get()).ok) throw std::runtime_error(w.name);
  const double measured =
      static_cast<double>(sig->communication_matrix().total());

  if (truth <= 0.0) return 0.0;
  // Collisions overwhelmingly *add* dependencies; the excess over ground
  // truth is the false-positive volume.
  return std::max(0.0, measured - truth) / truth;
}

}  // namespace

int main() {
  const int threads = cs::env_threads(8);
  const cs::Scale scale = cs::env_scale();
  cb::banner("Section V.A.3: FPR vs signature size", threads, scale);

  // Ratio ladder 1 : 4 : 10 : 100, like the paper's 1e6/4e6/1e7/1e8.
  const std::size_t base =
      static_cast<std::size_t>(cs::env_int("COMMSCOPE_FPR_BASE_SLOTS", 1024));
  const std::array<std::size_t, 4> ladder{base, base * 4, base * 10,
                                          base * 100};
  const std::array<const char*, 4> paper{"1.0E+6 -> 85.8%", "4.0E+6 -> 22.0%",
                                         "1.0E+7 ->  8.4%", "1.0E+8 ->  2.1%"};

  // A representative app mix (one per pattern family) keeps the bench fast;
  // COMMSCOPE_FPR_ALL=1 sweeps all 14.
  std::vector<const cw::Workload*> apps;
  if (cs::env_int("COMMSCOPE_FPR_ALL", 0) != 0) {
    for (const cw::Workload& w : cw::registry()) apps.push_back(&w);
  } else {
    for (const char* n : {"fft", "ocean_cp", "radix", "water_nsq", "lu_ncb"}) {
      apps.push_back(cw::find(n));
    }
  }

  commscope::threading::ThreadTeam team(threads);
  cs::Table table({"slots", "avg FPR", "min", "max", "paper point"});
  std::vector<double> averages;
  for (std::size_t step = 0; step < ladder.size(); ++step) {
    std::vector<double> fprs;
    for (const cw::Workload* w : apps) {
      fprs.push_back(measure_fpr(*w, scale, team, threads, ladder[step]));
    }
    const cs::Summary s = cs::summarize(fprs);
    averages.push_back(s.mean);
    table.add_row({std::to_string(ladder[step]),
                   cs::Table::num(s.mean * 100.0, 1) + "%",
                   cs::Table::num(s.min * 100.0, 1) + "%",
                   cs::Table::num(s.max * 100.0, 1) + "%", paper[step]});
  }
  table.print(std::cout);

  bool monotone = true;
  for (std::size_t i = 1; i < averages.size(); ++i) {
    if (averages[i] > averages[i - 1] + 1e-9) monotone = false;
  }
  std::cout << "\nReproduced shape: FPR collapses monotonically as slots grow"
            << (monotone ? " [OK]" : " [VIOLATED]")
            << "; the largest signature approaches the perfect baseline.\n";
  return monotone ? 0 : 1;
}
