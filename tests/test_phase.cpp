// Phase-tracker tests: windowing, flushing, similarity-based segmentation.
#include <gtest/gtest.h>

#include "core/phase.hpp"

namespace cc = commscope::core;

TEST(PhaseTracker, DisabledTracksNothing) {
  cc::PhaseTracker tracker(4, 0);
  EXPECT_FALSE(tracker.enabled());
  tracker.add(0, 1, 1000);
  tracker.flush();
  EXPECT_TRUE(tracker.timeline().empty());
}

TEST(PhaseTracker, EmitsWindowWhenVolumeFills) {
  cc::PhaseTracker tracker(4, 100);
  tracker.add(0, 1, 60);
  EXPECT_TRUE(tracker.timeline().empty());
  tracker.add(0, 1, 60);  // crosses 100
  ASSERT_EQ(tracker.timeline().size(), 1u);
  EXPECT_EQ(tracker.timeline()[0].at(0, 1), 120u);
}

TEST(PhaseTracker, FlushEmitsPartialWindowOnce) {
  cc::PhaseTracker tracker(4, 1000);
  tracker.add(1, 2, 10);
  tracker.flush();
  EXPECT_EQ(tracker.timeline().size(), 1u);
  tracker.flush();  // idempotent when nothing new arrived
  EXPECT_EQ(tracker.timeline().size(), 1u);
}

TEST(DetectPhases, EmptyTimeline) {
  EXPECT_TRUE(cc::detect_phases({}).empty());
}

TEST(DetectPhases, UniformTimelineIsOnePhase) {
  std::vector<cc::Matrix> windows;
  for (int i = 0; i < 5; ++i) {
    cc::Matrix m(4);
    m.at(0, 1) = 100 + static_cast<std::uint64_t>(i);  // same direction
    windows.push_back(m);
  }
  const auto phases = cc::detect_phases(windows, 0.8);
  ASSERT_EQ(phases.size(), 1u);
  EXPECT_EQ(phases[0].first_window, 0u);
  EXPECT_EQ(phases[0].last_window, 4u);
  EXPECT_EQ(phases[0].pattern.at(0, 1), 100u + 101 + 102 + 103 + 104);
}

TEST(DetectPhases, OrthogonalPatternsSplit) {
  std::vector<cc::Matrix> windows;
  for (int i = 0; i < 3; ++i) {
    cc::Matrix m(4);
    m.at(0, 1) = 50;
    windows.push_back(m);
  }
  for (int i = 0; i < 3; ++i) {
    cc::Matrix m(4);
    m.at(2, 3) = 50;
    windows.push_back(m);
  }
  const auto phases = cc::detect_phases(windows, 0.8);
  ASSERT_EQ(phases.size(), 2u);
  EXPECT_EQ(phases[0].last_window, 2u);
  EXPECT_EQ(phases[1].first_window, 3u);
}

TEST(DetectPhases, ThresholdControlsMergeAggressiveness) {
  cc::Matrix a(2);
  a.at(0, 1) = 100;
  cc::Matrix mix(2);
  mix.at(0, 1) = 100;
  mix.at(1, 0) = 60;
  const std::vector<cc::Matrix> windows{a, mix};
  // cos(a, mix) = 100 / sqrt(100^2+60^2) ~ 0.857.
  EXPECT_EQ(cc::detect_phases(windows, 0.80).size(), 1u);
  EXPECT_EQ(cc::detect_phases(windows, 0.95).size(), 2u);
}

TEST(OffsetSignature, CircularBinning) {
  cc::Matrix m(4);
  m.at(0, 1) = 10;  // offset +1
  m.at(3, 0) = 5;   // offset (0-3+4)%4 = +1
  m.at(2, 0) = 7;   // offset (0-2+4)%4 = +2
  const std::vector<double> sig = cc::offset_signature(m);
  ASSERT_EQ(sig.size(), 4u);
  EXPECT_DOUBLE_EQ(sig[0], 0.0);  // no self-communication
  EXPECT_DOUBLE_EQ(sig[1], 15.0);
  EXPECT_DOUBLE_EQ(sig[2], 7.0);
  EXPECT_DOUBLE_EQ(sig[3], 0.0);
}

TEST(OffsetSignature, ConsumerTranslationInvariance) {
  // Two windows that sampled different single consumers of an all-to-all
  // phase must have identical offset signatures (the scheduling-robustness
  // property the kOffsetCosine metric exists for).
  cc::Matrix w0(8);
  cc::Matrix w5(8);
  for (int p = 0; p < 8; ++p) {
    if (p != 0) w0.at(p, 0) = 100;
    if (p != 5) w5.at(p, 5) = 100;
  }
  EXPECT_EQ(cc::offset_signature(w0), cc::offset_signature(w5));
}

TEST(DetectPhases, OffsetMetricMergesConsumerSlices) {
  // Timeline: two single-consumer slices of the same all-to-all phase, then
  // a halo window. Matrix cosine fragments the first two; offset cosine
  // keeps them in one phase and still splits the halo.
  std::vector<cc::Matrix> windows;
  for (const int consumer : {1, 6}) {
    cc::Matrix w(8);
    for (int p = 0; p < 8; ++p) {
      if (p != consumer) w.at(p, consumer) = 64;
    }
    windows.push_back(w);
  }
  cc::Matrix halo(8);
  for (int i = 0; i + 1 < 8; ++i) {
    halo.at(i, i + 1) = 64;
    halo.at(i + 1, i) = 64;
  }
  windows.push_back(halo);

  EXPECT_EQ(cc::detect_phases(windows, 0.75, cc::PhaseMetric::kMatrixCosine)
                .size(),
            3u);
  const auto offset_phases =
      cc::detect_phases(windows, 0.75, cc::PhaseMetric::kOffsetCosine);
  ASSERT_EQ(offset_phases.size(), 2u);
  EXPECT_EQ(offset_phases[0].last_window, 1u);
}
