// Hash-function unit tests: determinism, reference behaviour, avalanche,
// slot-distribution quality (the property the paper selects MurmurHash for),
// and the known-answer + scalar-vs-SIMD pins that keep the vectorized batch
// kernels from ever changing the signatures persisted on disk.
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <random>
#include <set>
#include <vector>

#include "support/hash.hpp"
#include "support/simd.hpp"

namespace cs = commscope::support;

TEST(MurmurMix, IsDeterministic) {
  EXPECT_EQ(cs::murmur_mix64(42), cs::murmur_mix64(42));
  EXPECT_EQ(cs::murmur_mix32(42), cs::murmur_mix32(42));
}

TEST(MurmurMix, ZeroMapsToZero) {
  // fmix64(0) == 0 is a known fixed point of the finalizer.
  EXPECT_EQ(cs::murmur_mix64(0), 0u);
}

TEST(MurmurMix, DistinctInputsDistinctOutputs) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 1; i <= 10000; ++i) {
    seen.insert(cs::murmur_mix64(i));
  }
  EXPECT_EQ(seen.size(), 10000u);  // bijective finalizer: no collisions
}

TEST(MurmurMix, AvalancheFlipsAboutHalfTheBits) {
  // Flipping one input bit should flip ~32 of 64 output bits on average.
  double total_flips = 0.0;
  int samples = 0;
  for (std::uint64_t x = 1; x < 1000; x += 7) {
    for (int bit = 0; bit < 64; bit += 9) {
      const std::uint64_t a = cs::murmur_mix64(x);
      const std::uint64_t b = cs::murmur_mix64(x ^ (1ULL << bit));
      total_flips += __builtin_popcountll(a ^ b);
      ++samples;
    }
  }
  const double avg = total_flips / samples;
  EXPECT_GT(avg, 28.0);
  EXPECT_LT(avg, 36.0);
}

TEST(Murmur3Buffer, MatchesAcrossCalls) {
  const char data[] = "communication pattern";
  EXPECT_EQ(cs::murmur3_x86_32(data, sizeof data - 1, 7),
            cs::murmur3_x86_32(data, sizeof data - 1, 7));
  EXPECT_EQ(cs::murmur3_x64_64(data, sizeof data - 1, 7),
            cs::murmur3_x64_64(data, sizeof data - 1, 7));
}

TEST(Murmur3Buffer, SeedChangesOutput) {
  const char data[] = "abcdefgh";
  EXPECT_NE(cs::murmur3_x86_32(data, 8, 1), cs::murmur3_x86_32(data, 8, 2));
  EXPECT_NE(cs::murmur3_x64_64(data, 8, 1), cs::murmur3_x64_64(data, 8, 2));
}

TEST(Murmur3Buffer, AllTailLengthsHashDistinctly) {
  // Exercises every switch-fallthrough tail path (len % 16 in 0..15).
  std::array<unsigned char, 48> buf{};
  for (std::size_t i = 0; i < buf.size(); ++i) {
    buf[i] = static_cast<unsigned char>(i * 37 + 1);
  }
  std::set<std::uint64_t> seen;
  for (std::size_t len = 0; len <= 32; ++len) {
    seen.insert(cs::murmur3_x64_64(buf.data(), len, 99));
  }
  EXPECT_EQ(seen.size(), 33u);
  std::set<std::uint32_t> seen32;
  for (std::size_t len = 0; len <= 16; ++len) {
    seen32.insert(cs::murmur3_x86_32(buf.data(), len, 99));
  }
  EXPECT_EQ(seen32.size(), 17u);
}

TEST(Murmur3Buffer, StringOverloadMatchesBuffer) {
  EXPECT_EQ(cs::murmur3_x64_64(std::string_view("loop:daxpy")),
            cs::murmur3_x64_64("loop:daxpy", 10, 0));
}

TEST(Fnv1a, KnownVector) {
  // FNV-1a("") = offset basis; FNV-1a("a") is the classic published value.
  EXPECT_EQ(cs::fnv1a_64(nullptr, 0), 0xcbf29ce484222325ULL);
  const char a = 'a';
  EXPECT_EQ(cs::fnv1a_64(&a, 1), 0xaf63dc4c8601ec8cULL);
}

TEST(KmHash, GeneratesDistinctProbes) {
  const cs::HashPair hp = cs::split_hash(cs::murmur_mix64(12345));
  std::set<std::uint64_t> probes;
  for (std::uint32_t i = 0; i < 16; ++i) {
    probes.insert(cs::km_hash(hp.h1, hp.h2, i) % 1024);
  }
  // Probes are i*h2 apart with h2 odd: nearly all distinct mod 1024.
  EXPECT_GE(probes.size(), 14u);
}

// Slot-distribution quality over address-like keys: Murmur should spread
// sequential 8-byte-strided addresses (a worst case for identity hashing)
// nearly uniformly over a power-of-two slot array.
TEST(HashDistribution, MurmurSpreadsStridedAddressesUniformly) {
  constexpr std::size_t kSlots = 1024;
  constexpr std::size_t kKeys = 64 * kSlots;
  std::vector<int> buckets(kSlots, 0);
  std::uintptr_t base = 0x7f0000000000;
  for (std::size_t i = 0; i < kKeys; ++i) {
    ++buckets[cs::murmur_mix64(base + i * 8) % kSlots];
  }
  const double expected = static_cast<double>(kKeys) / kSlots;
  double chi2 = 0.0;
  for (int c : buckets) {
    chi2 += (c - expected) * (c - expected) / expected;
  }
  // Chi-squared with 1023 dof: mean 1023, stddev ~45. Allow 6 sigma.
  EXPECT_LT(chi2, 1023 + 6 * 45.0);
}

// --- known-answer vectors ---------------------------------------------------
//
// Every address-to-slot mapping, every bloom probe position, and every hash
// stored inside a persisted .matrix/.epochs file flows through these two
// functions. The exact outputs are pinned so a vectorized (or otherwise
// rewritten) kernel that drifts by even one bit fails here, not as silent
// slot reshuffling that invalidates committed baselines and saved files.
TEST(MurmurKat, Fmix64PinnedOutputs) {
  EXPECT_EQ(cs::murmur_mix64(0x0ULL), 0x0000000000000000ULL);
  EXPECT_EQ(cs::murmur_mix64(0x1ULL), 0xb456bcfc34c2cb2cULL);
  EXPECT_EQ(cs::murmur_mix64(0x2aULL), 0x810879608e4259ccULL);
  EXPECT_EQ(cs::murmur_mix64(0xdeadbeefULL), 0xd24bd59f862a1dacULL);
  EXPECT_EQ(cs::murmur_mix64(0xffffffffffffffffULL), 0x64b5720b4b825f21ULL);
  EXPECT_EQ(cs::murmur_mix64(0x9e3779b97f4a7c15ULL), 0x9ca066f1a4ab2eeaULL);
}

TEST(MurmurKat, Murmur3X64PinnedOutputs) {
  EXPECT_EQ(cs::murmur3_x64_64(nullptr, 0, 0), 0x0000000000000000ULL);
  EXPECT_EQ(cs::murmur3_x64_64("a", 1, 0), 0x85555565f6597889ULL);
  EXPECT_EQ(cs::murmur3_x64_64("communication pattern", 21, 7),
            0x0be92671777ecef7ULL);
  EXPECT_EQ(cs::murmur3_x64_64("The quick brown fox jumps over the lazy dog",
                               43, 0),
            0xe34bbc7bbc071b6cULL);
  // Exactly one 16-byte block, no tail: the block path alone.
  EXPECT_EQ(cs::murmur3_x64_64("0123456789abcdef", 16, 1234),
            0xde7228941150ad87ULL);
}

// --- batched kernel equivalence ---------------------------------------------

namespace {

// Adversarial key sets for the batch kernel: the AVX2 path assembles the
// 64-bit multiply from 32-bit partial products, so keys that stress carry
// propagation across the 32-bit boundary matter most.
std::vector<std::uint64_t> adversarial_keys() {
  std::vector<std::uint64_t> keys = {
      0x0ULL,
      0x1ULL,
      0xffffffffffffffffULL,
      0xfffffffeffffffffULL,  // carries out of the low 32-bit product
      0x00000000ffffffffULL,
      0xffffffff00000000ULL,
      0x8000000000000000ULL,
      0x0000000080000000ULL,
      0x5555555555555555ULL,
      0xaaaaaaaaaaaaaaaaULL,
      0x7f0000000000ULL,  // address-like
  };
  for (std::uint64_t i = 0; i < 64; ++i) keys.push_back(1ULL << i);  // one-hot
  for (std::uint64_t i = 0; i < 257; ++i) {
    keys.push_back(0x7f0000000000ULL + i * 8);  // strided address sweep
  }
  std::mt19937_64 rng(0xc0ffee);
  for (int i = 0; i < 4096; ++i) keys.push_back(rng());
  return keys;
}

}  // namespace

TEST(MurmurBatch, MatchesScalarElementwise) {
  const std::vector<std::uint64_t> keys = adversarial_keys();
  std::vector<std::uint64_t> out(keys.size());
  cs::murmur_mix64_batch(keys.data(), out.data(), keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    ASSERT_EQ(out[i], cs::murmur_mix64(keys[i])) << "key index " << i;
  }
}

TEST(MurmurBatch, ForcedScalarMatchesDispatchedKernel) {
  // The dispatch decision must be invisible in the output: run the same keys
  // through whatever kernel the CPU dispatches and through the forced-scalar
  // path, and require byte-identical results (this is the in-process version
  // of the cross-ISA differential suite).
  const std::vector<std::uint64_t> keys = adversarial_keys();
  std::vector<std::uint64_t> dispatched(keys.size());
  std::vector<std::uint64_t> scalar(keys.size());
  cs::murmur_mix64_batch(keys.data(), dispatched.data(), keys.size());
  cs::simd_force_scalar(true);
  EXPECT_EQ(cs::simd_level(), cs::SimdLevel::kScalar);
  cs::murmur_mix64_batch(keys.data(), scalar.data(), keys.size());
  cs::simd_force_scalar(false);
  EXPECT_EQ(dispatched, scalar);
}

TEST(MurmurBatch, EveryLengthIncludingTails) {
  // The AVX2 kernel peels 8-wide, then 4-wide, then scalar tail; every
  // length 0..33 exercises each peel combination, in place and out of place.
  std::mt19937_64 rng(7);
  for (std::size_t len = 0; len <= 33; ++len) {
    std::vector<std::uint64_t> keys(len);
    for (auto& k : keys) k = rng();
    std::vector<std::uint64_t> out(len, 0);
    cs::murmur_mix64_batch(keys.data(), out.data(), len);
    std::vector<std::uint64_t> in_place = keys;
    cs::murmur_mix64_batch(in_place.data(), in_place.data(), len);
    for (std::size_t i = 0; i < len; ++i) {
      ASSERT_EQ(out[i], cs::murmur_mix64(keys[i])) << len << ":" << i;
      ASSERT_EQ(in_place[i], out[i]) << len << ":" << i;
    }
  }
}

TEST(SimdDispatch, ReportsConsistentLevel) {
  // Whatever the environment decides, the name must agree with the level and
  // the scalar force-hook must round-trip.
  const cs::SimdLevel initial = cs::simd_level();
  EXPECT_STREQ(cs::simd_level_name(),
               initial == cs::SimdLevel::kAvx2 ? "avx2" : "scalar");
  if (initial == cs::SimdLevel::kAvx2) {
    EXPECT_TRUE(cs::simd_compiled());
    EXPECT_TRUE(cs::simd_cpu_supported());
  }
  cs::simd_force_scalar(true);
  EXPECT_EQ(cs::simd_level(), cs::SimdLevel::kScalar);
  cs::simd_force_scalar(false);
  EXPECT_EQ(cs::simd_level(), initial);
}

TEST(HashDistribution, IdentityHashDegeneratesOnStridedAddresses) {
  // The ablation rationale: identity (low-bits) hashing maps an 8-strided
  // sweep into only 1/8 of slots — the collision pathology Murmur avoids.
  constexpr std::size_t kSlots = 1024;
  std::set<std::uint64_t> used;
  std::uintptr_t base = 0x7f0000000000;
  for (std::size_t i = 0; i < 8 * kSlots; ++i) {
    used.insert(cs::identity_hash(base + i * 8) % kSlots);
  }
  EXPECT_EQ(used.size(), kSlots / 8);
}
