// Hash-function unit tests: determinism, reference behaviour, avalanche,
// slot-distribution quality (the property the paper selects MurmurHash for).
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <set>
#include <vector>

#include "support/hash.hpp"

namespace cs = commscope::support;

TEST(MurmurMix, IsDeterministic) {
  EXPECT_EQ(cs::murmur_mix64(42), cs::murmur_mix64(42));
  EXPECT_EQ(cs::murmur_mix32(42), cs::murmur_mix32(42));
}

TEST(MurmurMix, ZeroMapsToZero) {
  // fmix64(0) == 0 is a known fixed point of the finalizer.
  EXPECT_EQ(cs::murmur_mix64(0), 0u);
}

TEST(MurmurMix, DistinctInputsDistinctOutputs) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 1; i <= 10000; ++i) {
    seen.insert(cs::murmur_mix64(i));
  }
  EXPECT_EQ(seen.size(), 10000u);  // bijective finalizer: no collisions
}

TEST(MurmurMix, AvalancheFlipsAboutHalfTheBits) {
  // Flipping one input bit should flip ~32 of 64 output bits on average.
  double total_flips = 0.0;
  int samples = 0;
  for (std::uint64_t x = 1; x < 1000; x += 7) {
    for (int bit = 0; bit < 64; bit += 9) {
      const std::uint64_t a = cs::murmur_mix64(x);
      const std::uint64_t b = cs::murmur_mix64(x ^ (1ULL << bit));
      total_flips += __builtin_popcountll(a ^ b);
      ++samples;
    }
  }
  const double avg = total_flips / samples;
  EXPECT_GT(avg, 28.0);
  EXPECT_LT(avg, 36.0);
}

TEST(Murmur3Buffer, MatchesAcrossCalls) {
  const char data[] = "communication pattern";
  EXPECT_EQ(cs::murmur3_x86_32(data, sizeof data - 1, 7),
            cs::murmur3_x86_32(data, sizeof data - 1, 7));
  EXPECT_EQ(cs::murmur3_x64_64(data, sizeof data - 1, 7),
            cs::murmur3_x64_64(data, sizeof data - 1, 7));
}

TEST(Murmur3Buffer, SeedChangesOutput) {
  const char data[] = "abcdefgh";
  EXPECT_NE(cs::murmur3_x86_32(data, 8, 1), cs::murmur3_x86_32(data, 8, 2));
  EXPECT_NE(cs::murmur3_x64_64(data, 8, 1), cs::murmur3_x64_64(data, 8, 2));
}

TEST(Murmur3Buffer, AllTailLengthsHashDistinctly) {
  // Exercises every switch-fallthrough tail path (len % 16 in 0..15).
  std::array<unsigned char, 48> buf{};
  for (std::size_t i = 0; i < buf.size(); ++i) {
    buf[i] = static_cast<unsigned char>(i * 37 + 1);
  }
  std::set<std::uint64_t> seen;
  for (std::size_t len = 0; len <= 32; ++len) {
    seen.insert(cs::murmur3_x64_64(buf.data(), len, 99));
  }
  EXPECT_EQ(seen.size(), 33u);
  std::set<std::uint32_t> seen32;
  for (std::size_t len = 0; len <= 16; ++len) {
    seen32.insert(cs::murmur3_x86_32(buf.data(), len, 99));
  }
  EXPECT_EQ(seen32.size(), 17u);
}

TEST(Murmur3Buffer, StringOverloadMatchesBuffer) {
  EXPECT_EQ(cs::murmur3_x64_64(std::string_view("loop:daxpy")),
            cs::murmur3_x64_64("loop:daxpy", 10, 0));
}

TEST(Fnv1a, KnownVector) {
  // FNV-1a("") = offset basis; FNV-1a("a") is the classic published value.
  EXPECT_EQ(cs::fnv1a_64(nullptr, 0), 0xcbf29ce484222325ULL);
  const char a = 'a';
  EXPECT_EQ(cs::fnv1a_64(&a, 1), 0xaf63dc4c8601ec8cULL);
}

TEST(KmHash, GeneratesDistinctProbes) {
  const cs::HashPair hp = cs::split_hash(cs::murmur_mix64(12345));
  std::set<std::uint64_t> probes;
  for (std::uint32_t i = 0; i < 16; ++i) {
    probes.insert(cs::km_hash(hp.h1, hp.h2, i) % 1024);
  }
  // Probes are i*h2 apart with h2 odd: nearly all distinct mod 1024.
  EXPECT_GE(probes.size(), 14u);
}

// Slot-distribution quality over address-like keys: Murmur should spread
// sequential 8-byte-strided addresses (a worst case for identity hashing)
// nearly uniformly over a power-of-two slot array.
TEST(HashDistribution, MurmurSpreadsStridedAddressesUniformly) {
  constexpr std::size_t kSlots = 1024;
  constexpr std::size_t kKeys = 64 * kSlots;
  std::vector<int> buckets(kSlots, 0);
  std::uintptr_t base = 0x7f0000000000;
  for (std::size_t i = 0; i < kKeys; ++i) {
    ++buckets[cs::murmur_mix64(base + i * 8) % kSlots];
  }
  const double expected = static_cast<double>(kKeys) / kSlots;
  double chi2 = 0.0;
  for (int c : buckets) {
    chi2 += (c - expected) * (c - expected) / expected;
  }
  // Chi-squared with 1023 dof: mean 1023, stddev ~45. Allow 6 sigma.
  EXPECT_LT(chi2, 1023 + 6 * 45.0);
}

TEST(HashDistribution, IdentityHashDegeneratesOnStridedAddresses) {
  // The ablation rationale: identity (low-bits) hashing maps an 8-strided
  // sweep into only 1/8 of slots — the collision pathology Murmur avoids.
  constexpr std::size_t kSlots = 1024;
  std::set<std::uint64_t> used;
  std::uintptr_t base = 0x7f0000000000;
  for (std::size_t i = 0; i < 8 * kSlots; ++i) {
    used.insert(cs::identity_hash(base + i * 8) % kSlots);
  }
  EXPECT_EQ(used.size(), kSlots / 8);
}
