// Signature-memory unit tests: one-level write signature, two-level read
// signature (lazy bloom allocation, clear-on-write recycling), the exact
// baseline's Algorithm-1 semantics, and the Eq. 2 memory model including the
// paper's "~580 MB at n=10^7, t=32, p=0.001" reference point.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "sigmem/exact_signature.hpp"
#include "sigmem/read_signature.hpp"
#include "sigmem/size_model.hpp"
#include "sigmem/write_signature.hpp"
#include "support/memtrack.hpp"

namespace sg = commscope::sigmem;
namespace cs = commscope::support;

// --- WriteSignature ---------------------------------------------------------

TEST(WriteSignature, EmptySlotsHaveNoWriter) {
  sg::WriteSignature ws(128);
  for (std::size_t s = 0; s < 128; ++s) {
    EXPECT_FALSE(ws.last_writer(s).has_value());
  }
  EXPECT_EQ(ws.occupancy(), 0u);
}

TEST(WriteSignature, RecordsLastWriter) {
  sg::WriteSignature ws(64);
  ws.record(5, 3);
  ASSERT_TRUE(ws.last_writer(5).has_value());
  EXPECT_EQ(*ws.last_writer(5), 3);
  ws.record(5, 7);  // overwrite: only the last writer survives
  EXPECT_EQ(*ws.last_writer(5), 7);
  EXPECT_EQ(ws.occupancy(), 1u);
}

TEST(WriteSignature, TidZeroIsDistinguishableFromEmpty) {
  sg::WriteSignature ws(8);
  ws.record(0, 0);
  ASSERT_TRUE(ws.last_writer(0).has_value());
  EXPECT_EQ(*ws.last_writer(0), 0);
}

TEST(WriteSignature, ClearEmptiesEverything) {
  sg::WriteSignature ws(16);
  for (std::size_t s = 0; s < 16; ++s) ws.record(s, 1);
  ws.clear();
  EXPECT_EQ(ws.occupancy(), 0u);
}

TEST(WriteSignature, FourBytesPerSlotPerEq2) {
  sg::WriteSignature ws(1000);
  EXPECT_EQ(ws.byte_size(), 4000u);
}

TEST(WriteSignature, SlotMappingIsStableAndInRange) {
  sg::WriteSignature ws(97);
  const std::uintptr_t addr = 0x7fff12345678;
  EXPECT_EQ(ws.slot_of(addr), ws.slot_of(addr));
  for (std::uintptr_t a = 0; a < 1000; ++a) {
    EXPECT_LT(ws.slot_of(0x1000 + a * 8), 97u);
  }
}

TEST(WriteSignature, ChargesTracker) {
  cs::MemoryTracker tracker;
  {
    sg::WriteSignature ws(256, &tracker);
    EXPECT_EQ(tracker.current(), 1024u);
  }
  EXPECT_EQ(tracker.current(), 0u);  // released on destruction
}

TEST(WriteSignature, RejectsZeroSlots) {
  EXPECT_THROW(sg::WriteSignature(0), std::invalid_argument);
}

// --- ReadSignature ----------------------------------------------------------

TEST(ReadSignature, LazyBloomAllocation) {
  sg::ReadSignature rs(64, 8, 0.001);
  EXPECT_EQ(rs.allocated_filters(), 0u);
  rs.insert(3, 1);
  EXPECT_EQ(rs.allocated_filters(), 1u);
  rs.insert(3, 2);  // same slot: no new filter
  EXPECT_EQ(rs.allocated_filters(), 1u);
  rs.insert(9, 1);
  EXPECT_EQ(rs.allocated_filters(), 2u);
}

TEST(ReadSignature, InsertReportsPriorMembership) {
  sg::ReadSignature rs(16, 8, 0.001);
  EXPECT_FALSE(rs.insert(4, 5));
  EXPECT_TRUE(rs.insert(4, 5));
  EXPECT_TRUE(rs.contains(4, 5));
  EXPECT_FALSE(rs.contains(4, 6));
  EXPECT_FALSE(rs.contains(5, 5));  // different slot untouched
}

TEST(ReadSignature, ClearSlotRecyclesFilter) {
  sg::ReadSignature rs(16, 8, 0.001);
  rs.insert(2, 1);
  rs.insert(2, 3);
  rs.clear_slot(2);
  EXPECT_FALSE(rs.contains(2, 1));
  EXPECT_FALSE(rs.contains(2, 3));
  // Storage is retained, not freed: allocation count unchanged.
  EXPECT_EQ(rs.allocated_filters(), 1u);
  // And the slot is immediately reusable.
  EXPECT_FALSE(rs.insert(2, 1));
  EXPECT_TRUE(rs.contains(2, 1));
}

TEST(ReadSignature, ClearAllSlots) {
  sg::ReadSignature rs(8, 4, 0.01);
  for (std::size_t s = 0; s < 8; ++s) rs.insert(s, 2);
  rs.clear();
  for (std::size_t s = 0; s < 8; ++s) EXPECT_FALSE(rs.contains(s, 2));
}

TEST(ReadSignature, ByteSizeGrowsWithAllocatedFilters) {
  sg::ReadSignature rs(32, 32, 0.001);
  const std::size_t base = rs.byte_size();
  rs.insert(0, 0);
  rs.insert(1, 0);
  EXPECT_GT(rs.byte_size(), base);
}

TEST(ReadSignature, BloomSizingMatchesEq2Term) {
  sg::ReadSignature rs(8, 32, 0.001);
  const cs::BloomParams expected = cs::bloom_params(32, 0.001);
  EXPECT_EQ(rs.bloom_params().bits, expected.bits);
  EXPECT_EQ(rs.bloom_params().hashes, expected.hashes);
}

TEST(ReadSignature, ConcurrentFirstInsertAgreesOnOneFilter) {
  sg::ReadSignature rs(4, 16, 0.001);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&rs, t] { rs.insert(1, t); });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(rs.allocated_filters(), 1u);
  for (int t = 0; t < 8; ++t) EXPECT_TRUE(rs.contains(1, t));
}

TEST(ReadSignature, RejectsBadArguments) {
  EXPECT_THROW(sg::ReadSignature(0, 8, 0.001), std::invalid_argument);
  EXPECT_THROW(sg::ReadSignature(8, 0, 0.001), std::invalid_argument);
}

// --- ExactSignature ---------------------------------------------------------

TEST(ExactSignature, ReportsRawOncePerReaderPerWrite) {
  sg::ExactSignature sig(8);
  sig.on_write(0x100, 0);
  const auto first = sig.on_read(0x100, 1);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(*first, 0);
  // Second read by the same thread: first-touch rule suppresses it.
  EXPECT_FALSE(sig.on_read(0x100, 1).has_value());
  // A different reader still counts.
  EXPECT_EQ(sig.on_read(0x100, 2).value(), 0);
}

TEST(ExactSignature, SelfReadIsNotCommunication) {
  sg::ExactSignature sig(8);
  sig.on_write(0x200, 3);
  EXPECT_FALSE(sig.on_read(0x200, 3).has_value());
}

TEST(ExactSignature, WriteResetsReaderSet) {
  sg::ExactSignature sig(8);
  sig.on_write(0x300, 0);
  EXPECT_TRUE(sig.on_read(0x300, 1).has_value());
  sig.on_write(0x300, 2);  // new producing write
  const auto again = sig.on_read(0x300, 1);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(*again, 2);  // attributed to the new producer
}

TEST(ExactSignature, ReadBeforeAnyWriteIsSilent) {
  sg::ExactSignature sig(8);
  EXPECT_FALSE(sig.on_read(0x400, 1).has_value());
  // ...and that early read does not mask a later RAW.
  sig.on_write(0x400, 0);
  EXPECT_TRUE(sig.on_read(0x400, 1).has_value());
}

TEST(ExactSignature, DistinctAddressesNeverCollide) {
  sg::ExactSignature sig(4);
  sig.on_write(0x1000, 0);
  // A read at a different address must not see 0x1000's writer.
  EXPECT_FALSE(sig.on_read(0x1008, 1).has_value());
}

TEST(ExactSignature, MemoryGrowsWithDistinctAddresses) {
  cs::MemoryTracker tracker;
  sg::ExactSignature sig(8, &tracker);
  const std::uint64_t before = tracker.current();
  for (std::uintptr_t a = 0; a < 100; ++a) sig.on_write(0x5000 + a * 8, 0);
  EXPECT_GT(tracker.current(), before);
  EXPECT_EQ(sig.tracked_addresses(), 100u);
  sig.clear();
  EXPECT_EQ(sig.tracked_addresses(), 0u);
  EXPECT_EQ(tracker.current(), before);
}

TEST(ExactSignature, RejectsBadThreadCounts) {
  EXPECT_THROW(sg::ExactSignature(0), std::invalid_argument);
  EXPECT_THROW(sg::ExactSignature(65), std::invalid_argument);
}

// --- Eq. 2 size model -------------------------------------------------------

TEST(SizeModel, PaperReferencePointIsAbout580MB) {
  // Section V.A.2: n = 10^7, t = 32, FPRate = 0.001 -> "around 580MB".
  const sg::SigMemModel m = sg::sigmem_model(10'000'000, 32, 0.001);
  EXPECT_NEAR(m.total() / (1024.0 * 1024.0), 580.0, 30.0);
}

TEST(SizeModel, WriteTermIsFourBytesPerSlot) {
  const sg::SigMemModel m = sg::sigmem_model(1000, 32, 0.001);
  EXPECT_DOUBLE_EQ(m.write_bytes, 4000.0);
}

TEST(SizeModel, ScalesLinearlyInSlots) {
  const sg::SigMemModel a = sg::sigmem_model(1000, 32, 0.001);
  const sg::SigMemModel b = sg::sigmem_model(2000, 32, 0.001);
  EXPECT_NEAR(b.total(), 2.0 * a.total(), 1e-6);
}

TEST(SizeModel, MoreThreadsNeedBiggerBlooms) {
  const sg::SigMemModel t8 = sg::sigmem_model(1000, 8, 0.001);
  const sg::SigMemModel t32 = sg::sigmem_model(1000, 32, 0.001);
  EXPECT_GT(t32.read_bytes, t8.read_bytes);
  EXPECT_EQ(t32.write_bytes, t8.write_bytes);
}

TEST(SizeModel, StricterFprCostsMoreBits) {
  const sg::SigMemModel loose = sg::sigmem_model(1000, 32, 0.01);
  const sg::SigMemModel tight = sg::sigmem_model(1000, 32, 0.0001);
  EXPECT_GT(tight.bloom_bits_per_slot, loose.bloom_bits_per_slot);
}

// --- invalid-tid contracts --------------------------------------------------

TEST(WriteSignature, RejectsNegativeTidsWithCount) {
  sg::WriteSignature ws(64);
  ws.record(3, -1);  // e.g. ThreadRegistry::kUnregistered leaking through
  EXPECT_FALSE(ws.last_writer(3).has_value());
  EXPECT_EQ(ws.rejected(), 1u);
  ws.record(3, 5);
  ASSERT_TRUE(ws.last_writer(3).has_value());
  EXPECT_EQ(*ws.last_writer(3), 5);
  ws.record(4, -17);
  EXPECT_EQ(ws.rejected(), 2u);
}

TEST(ReadSignature, RejectsNegativeTidAndCountsOverflowInserts) {
  sg::ReadSignature rs(256, 8, 0.001);
  // Negative tid: rejected, counted, and reported as "already present" so
  // Algorithm 1 never manufactures a dependence from an invalid id.
  EXPECT_TRUE(rs.insert(1, -1));
  EXPECT_EQ(rs.rejected(), 1u);
  EXPECT_FALSE(rs.any(1));

  // tid >= max_threads: the bloom hash domain accepts it, but the configured
  // FP rate no longer holds — counted as provenance.
  EXPECT_EQ(rs.overflow_inserts(), 0u);
  (void)rs.insert(2, 8);
  (void)rs.insert(2, 63);
  EXPECT_EQ(rs.overflow_inserts(), 2u);
  EXPECT_TRUE(rs.any(2));
}
