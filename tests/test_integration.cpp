// Cross-module integration tests: the full pipeline the paper describes —
// instrumented workload -> nested matrices -> metrics -> classification ->
// thread mapping — plus signature-vs-exact agreement on real programs.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <sstream>
#include <string>

#include "baseline/ipm_profiler.hpp"
#include "baseline/shadow_profiler.hpp"
#include "core/profiler.hpp"
#include "core/report.hpp"
#include "core/thread_load.hpp"
#include "mapping/mapper.hpp"
#include "patterns/classifier.hpp"
#include "threading/thread_pool.hpp"
#include "workloads/workload.hpp"

namespace cw = commscope::workloads;
namespace cc = commscope::core;
namespace cb = commscope::baseline;
namespace ct = commscope::threading;
namespace cp = commscope::patterns;
namespace cm = commscope::mapping;

namespace {

constexpr int kThreads = 4;

std::unique_ptr<cc::Profiler> run_profiled(const char* workload,
                                           cc::Backend backend,
                                           std::size_t slots = 1 << 20) {
  cc::ProfilerOptions o;
  o.max_threads = kThreads;
  o.backend = backend;
  o.signature_slots = slots;
  o.fp_rate = 1e-6;
  auto prof = std::make_unique<cc::Profiler>(o);
  ct::ThreadTeam team(kThreads);
  const cw::Result r = cw::find(workload)->run(cw::Scale::kDev, team, prof.get());
  EXPECT_TRUE(r.ok) << workload;
  prof->finalize();
  return prof;
}

}  // namespace

TEST(Integration, LuNcbExposesFigure6Regions) {
  const auto prof = run_profiled("lu_ncb", cc::Backend::kExact);
  std::set<std::string> labels;
  for (const cc::RegionNode* n : prof->regions().preorder()) {
    labels.insert(n->label());
  }
  // The node set of Figure 6: TouchA, daxpy, bmod, barrier inside lu.
  EXPECT_TRUE(labels.count("lu:lu"));
  EXPECT_TRUE(labels.count("lu:TouchA"));
  EXPECT_TRUE(labels.count("lu:daxpy"));
  EXPECT_TRUE(labels.count("lu:bmod"));
  EXPECT_TRUE(labels.count("lu:bdiv"));
  EXPECT_TRUE(labels.count("sync:barrier"));
}

TEST(Integration, WaterNsqExposesFigure7Regions) {
  const auto prof = run_profiled("water_nsq", cc::Backend::kExact);
  std::set<std::string> labels;
  for (const cc::RegionNode* n : prof->regions().preorder()) {
    labels.insert(n->label());
  }
  EXPECT_TRUE(labels.count("water:MDMAIN"));
  EXPECT_TRUE(labels.count("water:INTERF"));
  EXPECT_TRUE(labels.count("water:POTENG"));
}

TEST(Integration, ParentMatrixEqualsSumOfChildrenOnRealRun) {
  const auto prof = run_profiled("lu_ncb", cc::Backend::kExact);
  for (const cc::RegionNode* node : prof->regions().preorder()) {
    cc::Matrix reconstructed = node->direct();
    for (const cc::RegionNode* c : node->children()) {
      reconstructed += c->aggregate();
    }
    EXPECT_EQ(reconstructed, node->aggregate()) << node->label();
  }
}

TEST(Integration, SignatureBackendTracksExactWithinTolerance) {
  // An amply-sized signature must reproduce the exact communication volume
  // closely on a real program (the FPR study's "enough signature slots
  // available -> precise" claim, Table I footnote).
  const auto exact = run_profiled("fft", cc::Backend::kExact);
  const auto sig =
      run_profiled("fft", cc::Backend::kAsymmetricSignature, 1 << 22);
  const auto te = static_cast<double>(exact->communication_matrix().total());
  const auto ts = static_cast<double>(sig->communication_matrix().total());
  ASSERT_GT(te, 0.0);
  EXPECT_NEAR(ts / te, 1.0, 0.05);
}

TEST(Integration, ShadowAndIpmAgreeWithExactOnSerialisedStream) {
  // Feed one workload's exact event stream order through shadow and IPM:
  // run the kernel twice under each profiler with a single-thread team is
  // not representative; instead run the same 4-thread workload and compare
  // total volumes, which must agree for exact detectors at word granularity.
  cc::ProfilerOptions o;
  o.max_threads = kThreads;
  o.backend = cc::Backend::kExact;
  auto exact = std::make_unique<cc::Profiler>(o);
  auto shadow = std::make_unique<cb::ShadowProfiler>(kThreads);
  auto ipm = std::make_unique<cb::IpmProfiler>(kThreads);

  ct::ThreadTeam team(kThreads);
  const cw::Workload* w = cw::find("fft");
  ASSERT_TRUE(w->run(cw::Scale::kDev, team, exact.get()).ok);
  ASSERT_TRUE(w->run(cw::Scale::kDev, team, shadow.get()).ok);
  ASSERT_TRUE(w->run(cw::Scale::kDev, team, ipm.get()).ok);
  ipm->finalize();

  const auto te = static_cast<double>(exact->communication_matrix().total());
  const auto tsh = static_cast<double>(shadow->communication_matrix().total());
  const auto tip = static_cast<double>(ipm->communication_matrix().total());
  ASSERT_GT(te, 0.0);
  // Deterministic phase-structured kernel: all exact detectors see the same
  // dependencies (shadow works at 8-byte-word granularity; fft's shared array
  // elements are 16-byte complex doubles, so words never alias elements).
  EXPECT_NEAR(tsh / te, 1.0, 0.10);
  EXPECT_NEAR(tip / te, 1.0, 0.10);
}

TEST(Integration, RealMatricesClassifyPlausibly) {
  cp::GeneratorOptions opts;
  opts.threads = kThreads;
  opts.jitter = 0.25;
  opts.background = 0.05;
  cp::NearestCentroidClassifier clf;
  clf.train(cp::featurize(cp::make_corpus(40, opts, 77)));

  // ocean_cp's halo pattern must classify as structured grid; water_nsq's
  // dense exchange as n-body or linear-algebra-like (dense classes).
  const auto ocean = run_profiled("ocean_cp", cc::Backend::kExact);
  const cp::PatternClass ocean_cls =
      clf.predict(ocean->communication_matrix().trimmed(kThreads));
  EXPECT_EQ(ocean_cls, cp::PatternClass::kStructuredGrid)
      << cp::to_string(ocean_cls);

  const auto water = run_profiled("water_nsq", cc::Backend::kExact);
  const cp::PatternClass water_cls =
      clf.predict(water->communication_matrix().trimmed(kThreads));
  EXPECT_TRUE(water_cls == cp::PatternClass::kNBody ||
              water_cls == cp::PatternClass::kLinearAlgebra ||
              water_cls == cp::PatternClass::kSpectral)
      << cp::to_string(water_cls);
}

TEST(Integration, MappingImprovesRealWorkloadCost) {
  const auto prof = run_profiled("ocean_cp", cc::Backend::kExact);
  const cc::Matrix m = prof->communication_matrix();
  const cm::Topology topo(2, 2);  // 4 hardware threads, 2 sockets
  const double scatter = cm::mapping_cost(m, topo, cm::scatter_mapping(4, topo));
  const cm::Mapping greedy = cm::refine_mapping(
      m, topo, cm::greedy_mapping(m, topo));
  EXPECT_LE(cm::mapping_cost(m, topo, greedy), scatter);
}

TEST(Integration, ThreadLoadIdentifiesRadixPrefixHotspot) {
  const auto prof = run_profiled("radix", cc::Backend::kExact);
  for (const cc::RegionNode* node : prof->regions().preorder()) {
    if (node->label() != "radix:prefix") continue;
    // Thread 0 alone consumes every histogram in the global prefix, so the
    // involvement view (Figure 8's per-thread load) is heavily skewed, and
    // the consumer view is maximally concentrated.
    const std::vector<double> involvement =
        cc::involvement_load(node->aggregate());
    EXPECT_GT(cc::load_imbalance(involvement), 0.5);
    const std::vector<double> consumers = cc::consumer_load(node->aggregate());
    EXPECT_DOUBLE_EQ(cc::active_fraction(consumers), 1.0 / kThreads);
  }
}

TEST(Integration, ReportRendersRealProfileWithoutSurprises) {
  const auto prof = run_profiled("lu_cb", cc::Backend::kExact);
  std::ostringstream os;
  cc::ReportOptions opts;
  opts.heatmap_top = 2;
  cc::print_report(os, *prof, opts);
  const std::string out = os.str();
  EXPECT_NE(out.find("lu:bmod"), std::string::npos);
  EXPECT_NE(out.find("communication matrix"), std::string::npos);
}
