// Threading substrate tests: partitioning properties (parameterized sweep),
// spinlock mutual exclusion, barrier phasing, ThreadTeam execution.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "threading/barrier.hpp"
#include "threading/registry.hpp"
#include "threading/spinlock.hpp"
#include "threading/thread_pool.hpp"

namespace ct = commscope::threading;

// --- block_partition: exhaustive property sweep -----------------------------

class PartitionSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, int>> {};

TEST_P(PartitionSweep, CoversExactlyOnceInOrder) {
  const auto [total, parties] = GetParam();
  std::size_t covered = 0;
  std::size_t prev_end = 0;
  for (int t = 0; t < parties; ++t) {
    const ct::Range r = ct::block_partition(total, parties, t);
    EXPECT_EQ(r.begin, prev_end);  // contiguous, ordered, gap-free
    EXPECT_LE(r.begin, r.end);
    covered += r.size();
    prev_end = r.end;
  }
  EXPECT_EQ(covered, total);
  EXPECT_EQ(prev_end, total);
}

TEST_P(PartitionSweep, NearEqualSizes) {
  const auto [total, parties] = GetParam();
  std::size_t min_sz = total + 1;
  std::size_t max_sz = 0;
  for (int t = 0; t < parties; ++t) {
    const ct::Range r = ct::block_partition(total, parties, t);
    min_sz = std::min(min_sz, r.size());
    max_sz = std::max(max_sz, r.size());
  }
  EXPECT_LE(max_sz - min_sz, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PartitionSweep,
    ::testing::Combine(::testing::Values(std::size_t{0}, std::size_t{1},
                                         std::size_t{7}, std::size_t{8},
                                         std::size_t{100}, std::size_t{1023}),
                       ::testing::Values(1, 2, 3, 7, 8, 16)));

// --- Spinlock ---------------------------------------------------------------

TEST(Spinlock, MutualExclusionUnderContention) {
  ct::Spinlock mu;
  long counter = 0;
  constexpr int kThreads = 4;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        std::lock_guard lock(mu);
        ++counter;  // data race iff the lock is broken
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, static_cast<long>(kThreads) * kIters);
}

TEST(Spinlock, TryLock) {
  ct::Spinlock mu;
  EXPECT_TRUE(mu.try_lock());
  EXPECT_FALSE(mu.try_lock());
  mu.unlock();
  EXPECT_TRUE(mu.try_lock());
  mu.unlock();
}

// --- Barrier ----------------------------------------------------------------

TEST(Barrier, NoThreadPassesEarly) {
  constexpr int kThreads = 6;
  ct::Barrier barrier(kThreads);
  std::atomic<int> phase_count{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int phase = 0; phase < 5; ++phase) {
        phase_count.fetch_add(1);
        barrier.arrive_and_wait();
        // After the barrier, every thread of this phase has arrived.
        EXPECT_GE(phase_count.load(), (phase + 1) * kThreads);
        barrier.arrive_and_wait();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(phase_count.load(), 5 * kThreads);
}

TEST(Barrier, ReusableAcrossGenerations) {
  ct::Barrier barrier(2);
  std::thread partner([&] {
    for (int i = 0; i < 100; ++i) barrier.arrive_and_wait();
  });
  for (int i = 0; i < 100; ++i) barrier.arrive_and_wait();
  partner.join();
  EXPECT_EQ(barrier.parties(), 2);
}

// --- ThreadTeam -------------------------------------------------------------

TEST(ThreadTeam, RunsEveryTidExactlyOnce) {
  ct::ThreadTeam team(8);
  std::vector<std::atomic<int>> hits(8);
  team.run([&](int tid) { hits[static_cast<std::size_t>(tid)].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadTeam, SequentialRunsReuseWorkers) {
  ct::ThreadTeam team(4);
  std::atomic<int> total{0};
  for (int round = 0; round < 10; ++round) {
    team.run([&](int) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 40);
}

TEST(ThreadTeam, BarrierSynchronizesPhases) {
  ct::ThreadTeam team(4);
  std::vector<int> data(4, 0);
  std::atomic<bool> mismatch{false};
  team.run([&](int tid) {
    data[static_cast<std::size_t>(tid)] = tid + 1;
    team.barrier().arrive_and_wait();
    int sum = 0;
    for (int v : data) sum += v;
    if (sum != 10) mismatch.store(true);
  });
  EXPECT_FALSE(mismatch.load());
}

TEST(ThreadTeam, RejectsZeroWorkers) {
  EXPECT_THROW(ct::ThreadTeam(0), std::invalid_argument);
}

TEST(ThreadRegistry, StableWithinThread) {
  const int a = ct::ThreadRegistry::current_tid();
  const int b = ct::ThreadRegistry::current_tid();
  EXPECT_EQ(a, b);
  int other = -1;
  std::thread t([&] { other = ct::ThreadRegistry::current_tid(); });
  t.join();
  EXPECT_NE(other, a);
  EXPECT_GE(ct::ThreadRegistry::registered_count(), 2);
}
