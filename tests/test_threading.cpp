// Threading substrate tests: partitioning properties (parameterized sweep),
// spinlock mutual exclusion, barrier phasing, ThreadTeam execution.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <numeric>
#include <thread>
#include <vector>

#include "threading/barrier.hpp"
#include "threading/registry.hpp"
#include "threading/spinlock.hpp"
#include "threading/thread_pool.hpp"

namespace ct = commscope::threading;

// --- block_partition: exhaustive property sweep -----------------------------

class PartitionSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, int>> {};

TEST_P(PartitionSweep, CoversExactlyOnceInOrder) {
  const auto [total, parties] = GetParam();
  std::size_t covered = 0;
  std::size_t prev_end = 0;
  for (int t = 0; t < parties; ++t) {
    const ct::Range r = ct::block_partition(total, parties, t);
    EXPECT_EQ(r.begin, prev_end);  // contiguous, ordered, gap-free
    EXPECT_LE(r.begin, r.end);
    covered += r.size();
    prev_end = r.end;
  }
  EXPECT_EQ(covered, total);
  EXPECT_EQ(prev_end, total);
}

TEST_P(PartitionSweep, NearEqualSizes) {
  const auto [total, parties] = GetParam();
  std::size_t min_sz = total + 1;
  std::size_t max_sz = 0;
  for (int t = 0; t < parties; ++t) {
    const ct::Range r = ct::block_partition(total, parties, t);
    min_sz = std::min(min_sz, r.size());
    max_sz = std::max(max_sz, r.size());
  }
  EXPECT_LE(max_sz - min_sz, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PartitionSweep,
    ::testing::Combine(::testing::Values(std::size_t{0}, std::size_t{1},
                                         std::size_t{7}, std::size_t{8},
                                         std::size_t{100}, std::size_t{1023}),
                       ::testing::Values(1, 2, 3, 7, 8, 16)));

// --- Spinlock ---------------------------------------------------------------

TEST(Spinlock, MutualExclusionUnderContention) {
  ct::Spinlock mu;
  long counter = 0;
  constexpr int kThreads = 4;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        std::lock_guard lock(mu);
        ++counter;  // data race iff the lock is broken
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, static_cast<long>(kThreads) * kIters);
}

TEST(Spinlock, TryLock) {
  ct::Spinlock mu;
  EXPECT_TRUE(mu.try_lock());
  EXPECT_FALSE(mu.try_lock());
  mu.unlock();
  EXPECT_TRUE(mu.try_lock());
  mu.unlock();
}

// --- Barrier ----------------------------------------------------------------

TEST(Barrier, NoThreadPassesEarly) {
  constexpr int kThreads = 6;
  ct::Barrier barrier(kThreads);
  std::atomic<int> phase_count{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int phase = 0; phase < 5; ++phase) {
        phase_count.fetch_add(1);
        barrier.arrive_and_wait();
        // After the barrier, every thread of this phase has arrived.
        EXPECT_GE(phase_count.load(), (phase + 1) * kThreads);
        barrier.arrive_and_wait();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(phase_count.load(), 5 * kThreads);
}

TEST(Barrier, ReusableAcrossGenerations) {
  ct::Barrier barrier(2);
  std::thread partner([&] {
    for (int i = 0; i < 100; ++i) barrier.arrive_and_wait();
  });
  for (int i = 0; i < 100; ++i) barrier.arrive_and_wait();
  partner.join();
  EXPECT_EQ(barrier.parties(), 2);
}

// --- ThreadTeam -------------------------------------------------------------

TEST(ThreadTeam, RunsEveryTidExactlyOnce) {
  ct::ThreadTeam team(8);
  std::vector<std::atomic<int>> hits(8);
  team.run([&](int tid) { hits[static_cast<std::size_t>(tid)].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadTeam, SequentialRunsReuseWorkers) {
  ct::ThreadTeam team(4);
  std::atomic<int> total{0};
  for (int round = 0; round < 10; ++round) {
    team.run([&](int) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 40);
}

TEST(ThreadTeam, BarrierSynchronizesPhases) {
  ct::ThreadTeam team(4);
  std::vector<int> data(4, 0);
  std::atomic<bool> mismatch{false};
  team.run([&](int tid) {
    data[static_cast<std::size_t>(tid)] = tid + 1;
    team.barrier().arrive_and_wait();
    int sum = 0;
    for (int v : data) sum += v;
    if (sum != 10) mismatch.store(true);
  });
  EXPECT_FALSE(mismatch.load());
}

TEST(ThreadTeam, RejectsZeroWorkers) {
  EXPECT_THROW(ct::ThreadTeam(0), std::invalid_argument);
}

TEST(ThreadRegistry, StableWithinThread) {
  const int a = ct::ThreadRegistry::current_tid();
  const int b = ct::ThreadRegistry::current_tid();
  EXPECT_EQ(a, b);
  int other = -1;
  std::thread t([&] { other = ct::ThreadRegistry::current_tid(); });
  t.join();
  EXPECT_NE(other, a);
  EXPECT_GE(ct::ThreadRegistry::registered_count(), 2);
}

TEST(ThreadRegistry, SlotReclaimedAndReusedAfterThreadExit) {
  int first = -1;
  std::thread t1([&] { first = ct::ThreadRegistry::current_tid(); });
  t1.join();  // join guarantees the lease destructor has run
  ASSERT_GE(first, 0);
  const int live_between = ct::ThreadRegistry::live_count();
  int second = -1;
  std::thread t2([&] { second = ct::ThreadRegistry::current_tid(); });
  t2.join();
  // Lowest-free-slot leasing makes reuse deterministic once the predecessor
  // is joined: the successor lands exactly where the exited thread was.
  EXPECT_EQ(second, first);
  EXPECT_EQ(ct::ThreadRegistry::live_count(), live_between);
}

TEST(ThreadRegistry, ChurnNeverLeaksLiveSlots) {
  const int live_before = ct::ThreadRegistry::live_count();
  for (int round = 0; round < 50; ++round) {
    std::thread t([] { (void)ct::ThreadRegistry::current_tid(); });
    t.join();
  }
  EXPECT_EQ(ct::ThreadRegistry::live_count(), live_before);
  EXPECT_GE(ct::ThreadRegistry::registered_count(), 50);
}

TEST(ThreadRegistry, OverflowDegradesToUnregistered) {
  // Park enough registered threads to fill every slot, then one more must
  // get kUnregistered (a counted degrade) rather than an out-of-range id.
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::vector<std::thread> parked;
  const int to_park = ct::ThreadRegistry::capacity() -
                      ct::ThreadRegistry::live_count();
  ASSERT_GT(to_park, 0);
  std::atomic<int> registered{0};
  for (int i = 0; i < to_park; ++i) {
    parked.emplace_back([&] {
      (void)ct::ThreadRegistry::current_tid();
      registered.fetch_add(1);
      std::unique_lock lk(mu);
      cv.wait(lk, [&] { return release; });
    });
  }
  while (registered.load() < to_park) std::this_thread::yield();
  EXPECT_EQ(ct::ThreadRegistry::live_count(), ct::ThreadRegistry::capacity());

  const std::uint64_t overflows_before = ct::ThreadRegistry::overflows();
  int overflow_tid = 0;
  std::thread extra([&] { overflow_tid = ct::ThreadRegistry::current_tid(); });
  extra.join();
  EXPECT_EQ(overflow_tid, ct::ThreadRegistry::kUnregistered);
  EXPECT_GT(ct::ThreadRegistry::overflows(), overflows_before);

  {
    std::lock_guard lk(mu);
    release = true;
  }
  cv.notify_all();
  for (auto& t : parked) t.join();

  // Churn freed the table: the overflow was transient, not sticky.
  int late_tid = ct::ThreadRegistry::kUnregistered;
  std::thread late([&] { late_tid = ct::ThreadRegistry::current_tid(); });
  late.join();
  EXPECT_GE(late_tid, 0);
}

TEST(ThreadRegistry, ReentrancyGuardEngagesOutermostOnly) {
  EXPECT_FALSE(ct::ThreadRegistry::in_runtime());
  ct::ThreadRegistry::ReentrancyGuard outer;
  EXPECT_TRUE(outer.engaged());
  EXPECT_TRUE(ct::ThreadRegistry::in_runtime());
  {
    ct::ThreadRegistry::ReentrancyGuard inner;
    EXPECT_FALSE(inner.engaged());
    ct::ThreadRegistry::ReentrancyGuard innermost;
    EXPECT_FALSE(innermost.engaged());
  }
  EXPECT_TRUE(ct::ThreadRegistry::in_runtime());
}

TEST(ThreadRegistry, QuiesceSeesBusyThreadAndItsRelease) {
  using namespace std::chrono_literals;
  // Nobody inside the runtime: quiescence is immediate.
  EXPECT_TRUE(ct::ThreadRegistry::quiesce(100ms));

  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<bool> inside{false};
  std::thread busy([&] {
    (void)ct::ThreadRegistry::current_tid();
    ct::ThreadRegistry::ReentrancyGuard guard;
    inside.store(true);
    std::unique_lock lk(mu);
    cv.wait(lk, [&] { return release; });
  });
  while (!inside.load()) std::this_thread::yield();

  // The parked thread sits inside the runtime: the epoch cannot advance.
  EXPECT_FALSE(ct::ThreadRegistry::quiesce(50ms));

  {
    std::lock_guard lk(mu);
    release = true;
  }
  cv.notify_all();
  busy.join();
  EXPECT_TRUE(ct::ThreadRegistry::quiesce(1000ms));
}

namespace {
std::vector<int>& flush_order() {
  // Deliberately leaked: the registered hooks fire again from the
  // registry's atexit pass, which can run after a plain static's
  // destructor — an immortal store keeps that exit-time call safe.
  static std::vector<int>* order = new std::vector<int>();
  return *order;
}
void flush_hook_a() noexcept { flush_order().push_back(1); }
void flush_hook_b() noexcept { flush_order().push_back(2); }
void flush_hook_recursive() noexcept {
  flush_order().push_back(3);
  // A hook that itself triggers a flush (e.g. exit() called from a handler)
  // must not recurse.
  ct::ThreadRegistry::run_flush_hooks();
}
}  // namespace

TEST(ThreadRegistry, FlushHooksRunNewestFirstWithoutRecursion) {
  ASSERT_TRUE(ct::ThreadRegistry::at_flush(&flush_hook_a));
  ASSERT_TRUE(ct::ThreadRegistry::at_flush(&flush_hook_b));
  ASSERT_TRUE(ct::ThreadRegistry::at_flush(&flush_hook_recursive));
  EXPECT_FALSE(ct::ThreadRegistry::at_flush(nullptr));
  flush_order().clear();
  ct::ThreadRegistry::run_flush_hooks();
  EXPECT_EQ(flush_order(), (std::vector<int>{3, 2, 1}));
}
