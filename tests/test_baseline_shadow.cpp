// Shadow-memory comparator tests: exact detection parity with the perfect
// signature, page-granular allocation, persona memory scaling (Figure 5's
// Memcheck/Helgrind/Helgrind+ laws).
#include <gtest/gtest.h>

#include "baseline/shadow_profiler.hpp"
#include "sigmem/exact_signature.hpp"

namespace cb = commscope::baseline;
namespace ci = commscope::instrument;
namespace sg = commscope::sigmem;

TEST(ShadowProfiler, DetectsRawLikeExactBaseline) {
  cb::ShadowProfiler shadow(8);
  sg::ExactSignature exact(8);
  commscope::core::Matrix expected(8);

  std::uint64_t state = 99;
  for (int i = 0; i < 30000; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    const std::uintptr_t addr = 0x700000 + (state >> 33) % 700 * 8;
    const int tid = static_cast<int>((state >> 20) % 8);
    if (((state >> 9) & 3) == 0) {
      shadow.on_access(tid, addr, 8, ci::AccessKind::kWrite);
      exact.on_write(addr, tid);
    } else {
      shadow.on_access(tid, addr, 8, ci::AccessKind::kRead);
      if (const auto p = exact.on_read(addr, tid)) {
        expected.at(*p, tid) += 8;
      }
    }
  }
  EXPECT_EQ(shadow.communication_matrix(), expected);
  EXPECT_GT(expected.total(), 0u);
}

TEST(ShadowProfiler, PagesAllocatedOnFirstTouchOnly) {
  cb::ShadowProfiler shadow(4);
  EXPECT_EQ(shadow.pages_touched(), 0u);
  shadow.on_access(0, 0x10000, 8, ci::AccessKind::kWrite);
  shadow.on_access(0, 0x10008, 8, ci::AccessKind::kWrite);  // same page
  EXPECT_EQ(shadow.pages_touched(), 1u);
  shadow.on_access(0, 0x20000, 8, ci::AccessKind::kWrite);  // new page
  EXPECT_EQ(shadow.pages_touched(), 2u);
}

TEST(ShadowProfiler, MemoryGrowsWithFootprintUnlikeSignatures) {
  cb::ShadowProfiler shadow(4);
  const std::uint64_t before = shadow.memory_bytes();
  for (std::uintptr_t a = 0; a < 4096; ++a) {
    shadow.on_access(0, 0x800000 + a * 64, 8, ci::AccessKind::kWrite);
  }
  EXPECT_GT(shadow.memory_bytes(), before);
  EXPECT_GE(shadow.pages_touched(), 60u);
}

TEST(ShadowProfiler, PersonaScalesReportedMemory) {
  cb::ShadowProfiler memcheck(4, cb::kMemcheck);
  cb::ShadowProfiler helgrind(4, cb::kHelgrind);
  cb::ShadowProfiler helgrind_plus(4, cb::kHelgrindPlus);
  for (auto* s : {&memcheck, &helgrind, &helgrind_plus}) {
    for (std::uintptr_t a = 0; a < 100; ++a) {
      s->on_access(0, 0x900000 + a * 4096, 8, ci::AccessKind::kWrite);
    }
  }
  // Same touched footprint, persona-proportional shadow bytes: 1.125 : 4 : 8.
  EXPECT_LT(memcheck.memory_bytes(), helgrind.memory_bytes());
  EXPECT_LT(helgrind.memory_bytes(), helgrind_plus.memory_bytes());
  EXPECT_EQ(helgrind_plus.memory_bytes(), 2 * helgrind.memory_bytes());
  // Detection cells are persona-independent.
  EXPECT_EQ(memcheck.cell_bytes(), helgrind_plus.cell_bytes());
}

TEST(ShadowProfiler, WriteInvalidatesReaders) {
  cb::ShadowProfiler shadow(4);
  shadow.on_access(0, 0xA000, 8, ci::AccessKind::kWrite);
  shadow.on_access(1, 0xA000, 8, ci::AccessKind::kRead);
  shadow.on_access(2, 0xA000, 8, ci::AccessKind::kWrite);
  shadow.on_access(1, 0xA000, 8, ci::AccessKind::kRead);  // counts again
  const auto m = shadow.communication_matrix();
  EXPECT_EQ(m.at(0, 1), 8u);
  EXPECT_EQ(m.at(2, 1), 8u);
}

TEST(ShadowProfiler, RejectsBadThreadCounts) {
  EXPECT_THROW(cb::ShadowProfiler(0), std::invalid_argument);
  EXPECT_THROW(cb::ShadowProfiler(65), std::invalid_argument);
}
