// Flag-parser tests for the commscope CLI.
#include <gtest/gtest.h>

#include "support/args.hpp"

namespace cs = commscope::support;

TEST(ArgParser, PositionalAndFlagsInterleave) {
  const cs::ArgParser args({"run", "--threads=4", "fft", "--scale", "large"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "run");
  EXPECT_EQ(args.positional()[1], "fft");
  EXPECT_EQ(args.get("threads"), "4");
  EXPECT_EQ(args.get("scale"), "large");
}

TEST(ArgParser, EqualsAndSpaceFormsEquivalent) {
  const cs::ArgParser a({"--slots=1024"});
  const cs::ArgParser b({"--slots", "1024"});
  EXPECT_EQ(a.get_int("slots", 0), 1024);
  EXPECT_EQ(b.get_int("slots", 0), 1024);
}

TEST(ArgParser, BareBooleanFlag) {
  const cs::ArgParser args({"--classify", "--sparse", "run"},
                           {"classify", "sparse"});
  EXPECT_TRUE(args.has("classify"));
  EXPECT_TRUE(args.has("sparse"));
  EXPECT_EQ(args.get("classify"), "");
  // Declared booleans never consume the following token.
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "run");
}

TEST(ArgParser, UndeclaredFlagConsumesValueToken) {
  const cs::ArgParser args({"--sparse", "run"});
  EXPECT_EQ(args.get("sparse"), "run");  // documented space-form greediness
  EXPECT_TRUE(args.positional().empty());
}

TEST(ArgParser, MissingFlagsFallBack) {
  const cs::ArgParser args({"run"});
  EXPECT_FALSE(args.has("threads"));
  EXPECT_EQ(args.get("threads", "8"), "8");
  EXPECT_EQ(args.get_int("threads", 8), 8);
  EXPECT_DOUBLE_EQ(args.get_double("fp-rate", 0.001), 0.001);
}

TEST(ArgParser, NumericParsingRejectsGarbage) {
  const cs::ArgParser args({"--slots=banana", "--fp-rate=0.5x"});
  EXPECT_EQ(args.get_int("slots", 7), 7);
  EXPECT_DOUBLE_EQ(args.get_double("fp-rate", 0.25), 0.25);
}

TEST(ArgParser, NegativeAndFloatValues) {
  const cs::ArgParser args({"--offset=-12", "--rate=0.001"});
  EXPECT_EQ(args.get_int("offset", 0), -12);
  EXPECT_DOUBLE_EQ(args.get_double("rate", 0.0), 0.001);
}

TEST(ArgParser, UnknownFlagDetection) {
  const cs::ArgParser args({"--threads=4", "--bogus=1"});
  const auto unknown = args.unknown_flags({"threads"});
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "bogus");
  EXPECT_TRUE(args.unknown_flags({"threads", "bogus"}).empty());
}

TEST(ArgParser, ArgcArgvConstructorSkipsProgramName) {
  const char* argv[] = {"commscope", "list", "--threads=2"};
  const cs::ArgParser args(3, argv);
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "list");
  EXPECT_EQ(args.get_int("threads", 0), 2);
}

TEST(ArgParser, LastOccurrenceWins) {
  const cs::ArgParser args({"--threads=2", "--threads=16"});
  EXPECT_EQ(args.get_int("threads", 0), 16);
}
