// Descriptive-statistics helper tests.
#include <gtest/gtest.h>

#include <vector>

#include "support/stats.hpp"

namespace cs = commscope::support;

TEST(Summarize, EmptyInput) {
  const cs::Summary s = cs::summarize({});
  EXPECT_EQ(s.n, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Summarize, BasicMoments) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  const cs::Summary s = cs::summarize(xs);
  EXPECT_EQ(s.n, 8u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.stddev, 2.0);  // classic population-stddev example
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.median, 4.5);
}

TEST(Summarize, OddCountMedian) {
  const std::vector<double> xs{3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(cs::summarize(xs).median, 2.0);
}

TEST(Geomean, KnownValue) {
  const std::vector<double> xs{1.0, 8.0};
  EXPECT_NEAR(cs::geomean(xs), 2.8284271, 1e-6);
}

TEST(Geomean, NonPositiveYieldsZero) {
  const std::vector<double> xs{1.0, 0.0};
  EXPECT_EQ(cs::geomean(xs), 0.0);
}

TEST(Percentile, Interpolates) {
  const std::vector<double> xs{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(cs::percentile(xs, 0), 10.0);
  EXPECT_DOUBLE_EQ(cs::percentile(xs, 100), 40.0);
  EXPECT_DOUBLE_EQ(cs::percentile(xs, 50), 25.0);
}

TEST(Imbalance, BalancedIsZero) {
  const std::vector<double> xs{3.0, 3.0, 3.0};
  EXPECT_DOUBLE_EQ(cs::imbalance(xs), 0.0);
}

TEST(Imbalance, HalfIdle) {
  // Figure 8a's shape: half the threads idle -> max/mean - 1 = 1.
  const std::vector<double> xs{2.0, 2.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(cs::imbalance(xs), 1.0);
}

TEST(Cv, ZeroMeanGuard) {
  const std::vector<double> xs{0.0, 0.0};
  EXPECT_EQ(cs::cv(xs), 0.0);
}

TEST(CosineSimilarity, IdenticalDirection) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{2.0, 4.0, 6.0};
  EXPECT_NEAR(cs::cosine_similarity(a, b), 1.0, 1e-12);
}

TEST(CosineSimilarity, Orthogonal) {
  const std::vector<double> a{1.0, 0.0};
  const std::vector<double> b{0.0, 1.0};
  EXPECT_DOUBLE_EQ(cs::cosine_similarity(a, b), 0.0);
}

TEST(CosineSimilarity, MismatchedOrEmpty) {
  const std::vector<double> a{1.0};
  const std::vector<double> b{1.0, 2.0};
  EXPECT_EQ(cs::cosine_similarity(a, b), 0.0);
  EXPECT_EQ(cs::cosine_similarity({}, {}), 0.0);
}
