// Report-generation tests: region rows, CSV schema, human-readable output.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "core/profiler.hpp"
#include "core/report.hpp"
#include "instrument/loop_scope.hpp"

namespace cc = commscope::core;
namespace ci = commscope::instrument;

namespace {

/// Builds a profiler with one loop region carrying 0->1 traffic.
std::unique_ptr<cc::Profiler> make_profiled() {
  cc::ProfilerOptions o;
  o.max_threads = 4;
  o.backend = cc::Backend::kExact;
  auto prof = std::make_unique<cc::Profiler>(o);
  static const ci::LoopId loop =
      ci::LoopRegistry::instance().declare("report", "hot");
  prof->on_thread_begin(0);
  prof->on_thread_begin(1);
  prof->on_loop_enter(0, loop);
  prof->on_loop_enter(1, loop);
  for (int i = 0; i < 4; ++i) {
    const auto addr = static_cast<std::uintptr_t>(0x9000 + i * 8);
    prof->on_access(0, addr, 8, ci::AccessKind::kWrite);
    prof->on_access(1, addr, 8, ci::AccessKind::kRead);
  }
  prof->on_loop_exit(0);
  prof->on_loop_exit(1);
  return prof;
}

}  // namespace

TEST(RegionRows, FlattensTreeWithMetrics) {
  const auto prof_ptr = make_profiled();
  const cc::Profiler& prof = *prof_ptr;
  const auto rows = cc::region_rows(prof.regions());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].label, "<root>");
  EXPECT_EQ(rows[0].direct_bytes, 0u);
  EXPECT_EQ(rows[0].aggregate_bytes, 32u);
  EXPECT_EQ(rows[1].label, "report:hot");
  EXPECT_EQ(rows[1].depth, 1);
  EXPECT_EQ(rows[1].entries, 2u);  // both threads entered
  EXPECT_EQ(rows[1].direct_bytes, 32u);
  EXPECT_GT(rows[1].load_imbalance, 0.0);
  EXPECT_DOUBLE_EQ(rows[1].active_fraction, 0.25);  // 1 of 4 producers
}

TEST(RegionRows, HideQuietRegionsFiltersLeaves) {
  cc::ProfilerOptions o;
  o.max_threads = 2;
  o.backend = cc::Backend::kExact;
  cc::Profiler prof(o);
  static const ci::LoopId quiet =
      ci::LoopRegistry::instance().declare("report", "quiet");
  prof.on_thread_begin(0);
  prof.on_loop_enter(0, quiet);
  prof.on_loop_exit(0);
  cc::ReportOptions opts;
  opts.hide_quiet_regions = true;
  EXPECT_EQ(cc::region_rows(prof.regions(), opts).size(), 1u);  // root only
  EXPECT_EQ(cc::region_rows(prof.regions()).size(), 2u);
}

TEST(PrintReport, ContainsHeaderStatsAndRegions) {
  const auto prof_ptr = make_profiled();
  const cc::Profiler& prof = *prof_ptr;
  std::ostringstream os;
  cc::print_report(os, prof);
  const std::string out = os.str();
  EXPECT_NE(out.find("CommScope profile"), std::string::npos);
  EXPECT_NE(out.find("RAW dependencies: 4"), std::string::npos);
  EXPECT_NE(out.find("report:hot"), std::string::npos);
}

TEST(PrintReport, HeatmapsForTopRegions) {
  const auto prof_ptr = make_profiled();
  const cc::Profiler& prof = *prof_ptr;
  std::ostringstream os;
  cc::ReportOptions opts;
  opts.heatmap_top = 1;
  cc::print_report(os, prof, opts);
  EXPECT_NE(os.str().find("communication matrix"), std::string::npos);
}

TEST(WriteCsv, SchemaAndValues) {
  const auto prof_ptr = make_profiled();
  const cc::Profiler& prof = *prof_ptr;
  std::ostringstream os;
  cc::write_csv(os, prof.regions());
  std::istringstream lines(os.str());
  std::string header;
  std::getline(lines, header);
  EXPECT_EQ(header,
            "label,depth,entries,direct_bytes,aggregate_bytes,imbalance,"
            "active_fraction");
  std::string row;
  int rows = 0;
  bool found_hot = false;
  while (std::getline(lines, row)) {
    ++rows;
    if (row.find("report:hot,1,2,32,32,") == 0) found_hot = true;
  }
  EXPECT_EQ(rows, 2);
  EXPECT_TRUE(found_hot);
}
