// Profile-as-a-service suite: wire framing under hostile bytes, per-session
// crash isolation, exactly-once delivery (retry + dedupe), heartbeat
// reaping, the overload ladder, the scrape endpoint, spill/replay across a
// daemon restart — and the differential soak: 8 concurrent clients shipping
// through injected socket faults (accept failure, short read, EAGAIN storm,
// client death mid-frame) must leave the daemon live with a merged matrix
// bit-identical to the sum of every client's ground truth.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/epoch_io.hpp"
#include "core/flight_recorder.hpp"
#include "resilience/fault_injector.hpp"
#include "serve/frame.hpp"
#include "serve/journal.hpp"
#include "serve/server.hpp"
#include "serve/session.hpp"
#include "serve/shipper.hpp"
#include "serve/wire_ctx.hpp"
#include "support/rng.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace cc = commscope::core;
namespace cr = commscope::resilience;
namespace cs = commscope::support;
namespace ctl = commscope::telemetry;
namespace sv = commscope::serve;

namespace {

std::string next_socket_path() {
  static int n = 0;
  return "/tmp/cs_serve_" + std::to_string(::getpid()) + "_" +
         std::to_string(++n) + ".sock";
}

bool wait_until(const std::function<bool()>& pred, int timeout_ms = 5000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return pred();
}

/// Runs a ServeServer on its own thread; stop() joins.
struct ServerHandle {
  sv::ServeServer server;
  std::thread th;

  explicit ServerHandle(sv::ServeOptions o) : server(std::move(o)) {}
  ~ServerHandle() { stop(); }

  bool start() {
    if (!server.open()) return false;
    th = std::thread([this] { server.run(); });
    return true;
  }
  void stop() {
    server.stop();
    if (th.joinable()) th.join();
  }
};

sv::ServeOptions fast_options(const std::string& socket) {
  sv::ServeOptions o;
  o.socket_path = socket;
  o.poll_ms = 5;
  o.reap_ms = 0;  // tests that want reaping opt in explicitly
  return o;
}

sv::ShipperOptions shipper_options(const std::string& socket,
                                   std::uint64_t session) {
  sv::ShipperOptions o;
  o.socket_path = socket;
  o.spill_path = socket + "." + std::to_string(session) + ".spill.epochs";
  o.session_id = session;
  o.threads = 4;
  o.max_attempts = 8;
  o.backoff_initial_ms = 2;
  o.backoff_max_ms = 50;
  o.connect_timeout_ms = 200;
  return o;
}

/// Deterministic per-client ground truth: `epochs` epochs of a 4-thread run,
/// with loop shares under two labels every client spells identically (the
/// cross-process merge key).
cc::EpochTimeline make_truth(int epochs, std::uint64_t seed,
                             std::uint64_t first_index = 0) {
  cs::SplitMix64 rng(seed);
  cc::EpochTimeline t;
  t.threads = 4;
  t.sealed = static_cast<std::uint64_t>(epochs);
  t.dropped = 0;
  t.loop_labels.emplace_back(0, "soak:loop-a");
  t.loop_labels.emplace_back(1, "soak:loop-b");
  for (int i = 0; i < epochs; ++i) {
    cc::EpochSample e;
    e.index = first_index + static_cast<std::uint64_t>(i);
    e.first_access = e.index * 100;
    e.last_access = e.first_access + 99;
    e.reason = cc::EpochSeal::kAccesses;
    const int cells = 1 + static_cast<int>(rng.next_below(4));
    for (int k = 0; k < cells; ++k) {
      cc::EpochCell c;
      c.producer = static_cast<std::uint16_t>(rng.next_below(4));
      c.consumer = static_cast<std::uint16_t>(rng.next_below(4));
      c.bytes = 1 + rng.next_below(512);
      e.bytes += c.bytes;
      e.cells.push_back(c);
    }
    e.dependencies = static_cast<std::uint64_t>(cells);
    cc::EpochLoopShare share;
    share.loop = static_cast<std::uint32_t>(i % 2);
    share.bytes = e.bytes;
    e.loops.push_back(share);
    t.epochs.push_back(std::move(e));
  }
  return t;
}

int raw_connect(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  for (int i = 0; i < 200; ++i) {
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) == 0) {
      return fd;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ::close(fd);
  return -1;
}

void raw_send(int fd, const std::string& bytes) {
  (void)::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL);
}

bool file_exists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

// --- wire framing -----------------------------------------------------------

TEST(ServeFrame, RoundTripWholeAndByteAtATime) {
  const std::string payload = "commscope payload \x01\x02\xff bytes";
  const std::string hello = sv::encode_frame(sv::FrameType::kHello, payload);
  const std::string beat = sv::encode_frame(sv::FrameType::kHeartbeat, {});

  sv::FrameDecoder whole;
  ASSERT_TRUE(whole.feed(hello.data(), hello.size()));
  ASSERT_TRUE(whole.feed(beat.data(), beat.size()));
  auto f1 = whole.next();
  ASSERT_TRUE(f1.has_value());
  EXPECT_EQ(f1->type, sv::FrameType::kHello);
  EXPECT_EQ(f1->payload, payload);
  auto f2 = whole.next();
  ASSERT_TRUE(f2.has_value());
  EXPECT_EQ(f2->type, sv::FrameType::kHeartbeat);
  EXPECT_TRUE(f2->payload.empty());
  EXPECT_FALSE(whole.next().has_value());
  EXPECT_FALSE(whole.mid_frame());

  // One byte at a time: worst-case reassembly (short reads).
  sv::FrameDecoder dribble;
  const std::string stream = hello + beat + hello;
  for (char ch : stream) ASSERT_TRUE(dribble.feed(&ch, 1));
  int frames = 0;
  while (dribble.next().has_value()) ++frames;
  EXPECT_EQ(frames, 3);
  EXPECT_FALSE(dribble.poisoned());
}

TEST(ServeFrame, MidFrameDetectsTornStreams) {
  const std::string f = sv::encode_frame(sv::FrameType::kEpochs, "payload");
  sv::FrameDecoder d;
  ASSERT_TRUE(d.feed(f.data(), f.size() - 3));  // peer dies 3 bytes short
  EXPECT_TRUE(d.mid_frame());
  EXPECT_FALSE(d.next().has_value());
  EXPECT_FALSE(d.poisoned());  // torn, not hostile
}

TEST(ServeFrame, GarbagePoisonsAsBadMagic) {
  sv::FrameDecoder d;
  const std::string junk = "this is not a commscope frame at all........";
  EXPECT_FALSE(d.feed(junk.data(), junk.size()));
  EXPECT_TRUE(d.poisoned());
  EXPECT_EQ(d.error(), sv::FrameError::kBadMagic);
  // Poisoned decoders never resynchronize, even on a now-valid frame.
  const std::string ok = sv::encode_frame(sv::FrameType::kHeartbeat, {});
  EXPECT_FALSE(d.feed(ok.data(), ok.size()));
  EXPECT_FALSE(d.next().has_value());
}

TEST(ServeFrame, CrcBitflipPoisons) {
  std::string f = sv::encode_frame(sv::FrameType::kEpochs, "epoch document");
  f[sv::kFrameHeaderBytes + 3] ^= 0x20;  // flip one payload bit
  sv::FrameDecoder d;
  EXPECT_FALSE(d.feed(f.data(), f.size()));
  EXPECT_EQ(d.error(), sv::FrameError::kBadCrc);
}

TEST(ServeFrame, LengthPrefixLiesRejectedBeforeAllocation) {
  // Header claims 100 MiB against a 1 KiB cap: the decoder must poison on
  // the header alone, without reserving payload storage.
  std::string f = sv::encode_frame(sv::FrameType::kEpochs, "x");
  f[8] = 0;  // rewrite payload_len (LE u32 at offset 8) to 100 MiB
  f[9] = 0;
  f[10] = 0x40;
  f[11] = 0x06;
  sv::FrameDecoder d(1024);
  EXPECT_FALSE(d.feed(f.data(), f.size()));
  EXPECT_EQ(d.error(), sv::FrameError::kOversize);
  EXPECT_LT(d.buffer_capacity(), std::size_t{2048});

  // len = 0 for a type that requires a payload is the other lie.
  std::string zero = sv::encode_frame(sv::FrameType::kEpochs, "payload");
  zero[8] = zero[9] = zero[10] = zero[11] = 0;
  sv::FrameDecoder d2;
  EXPECT_FALSE(d2.feed(zero.data(), zero.size()));
  EXPECT_EQ(d2.error(), sv::FrameError::kEmptyPayload);
}

TEST(ServeFrame, UnknownTypeAndReservedBytesRejected) {
  std::string f = sv::encode_frame(sv::FrameType::kHello, "hi");
  f[4] = 42;  // unknown type
  sv::FrameDecoder d;
  EXPECT_FALSE(d.feed(f.data(), f.size()));
  EXPECT_EQ(d.error(), sv::FrameError::kBadType);

  std::string r = sv::encode_frame(sv::FrameType::kHello, "hi");
  r[6] = 1;  // nonzero reserved byte
  sv::FrameDecoder d2;
  EXPECT_FALSE(d2.feed(r.data(), r.size()));
  EXPECT_EQ(d2.error(), sv::FrameError::kBadType);
}

// --- merge + isolation ------------------------------------------------------

TEST(Serve, TwoClientMergeEqualsSumOfGroundTruths) {
  const std::string socket = next_socket_path();
  ServerHandle h(fast_options(socket));
  ASSERT_TRUE(h.start());

  const cc::EpochTimeline t1 = make_truth(3, 0xAAA);
  const cc::EpochTimeline t2 = make_truth(3, 0xBBB);
  sv::EpochShipper s1(shipper_options(socket, 1));
  sv::EpochShipper s2(shipper_options(socket, 2));
  ASSERT_TRUE(s1.ship(t1));
  ASSERT_TRUE(s2.ship(t2));
  ASSERT_TRUE(wait_until(
      [&] { return h.server.snapshot().epochs_merged == 6; }));

  cc::Matrix expected = t1.total();
  expected += t2.total();
  EXPECT_TRUE(h.server.merged_matrix() == expected);

  // Loop shares merged by *label*: both clients' process-local ids land in
  // one shared vocabulary.
  const auto loops = h.server.merged_loop_totals();
  ASSERT_EQ(loops.size(), 2u);
  std::uint64_t want_a = 0;
  for (const auto& t : {t1, t2}) {
    for (const cc::EpochSample& e : t.epochs) {
      for (const cc::EpochLoopShare& s : e.loops) {
        if (s.loop == 0) want_a += s.bytes;
      }
    }
  }
  EXPECT_EQ(loops.at("soak:loop-a"), want_a);

  // The merged timeline is a valid epoch_io document (report-renderable).
  std::ostringstream os;
  cc::write_epochs(os, h.server.merged_timeline());
  std::istringstream is(os.str());
  EXPECT_EQ(cc::read_epochs(is).epochs.size(), 6u);
}

TEST(Serve, HostileClientDropsAloneAggregateSurvives) {
  const std::string socket = next_socket_path();
  ServerHandle h(fast_options(socket));
  ASSERT_TRUE(h.start());

  const cc::EpochTimeline good = make_truth(3, 0xC0FFEE);
  sv::EpochShipper s1(shipper_options(socket, 10));
  ASSERT_TRUE(s1.ship(good));
  ASSERT_TRUE(wait_until(
      [&] { return h.server.snapshot().epochs_merged == 3; }));

  // Client 2: raw garbage — poisoned pre-hello, counted as bad magic.
  int fd = raw_connect(socket);
  ASSERT_GE(fd, 0);
  raw_send(fd, "GARBAGE GARBAGE GARBAGE GARBAGE");
  ::close(fd);

  // Client 3: valid hello, then a frame whose payload was bit-flipped.
  fd = raw_connect(socket);
  ASSERT_GE(fd, 0);
  raw_send(fd, sv::encode_frame(sv::FrameType::kHello,
                                "commscope-hello 1 session 11 threads 4"));
  std::string bad = sv::encode_frame(sv::FrameType::kEpochs, "not epochs");
  bad[sv::kFrameHeaderBytes + 1] ^= 0x01;
  raw_send(fd, bad);
  ::close(fd);

  // Client 4: frame-valid but the epoch document inside is hostile.
  fd = raw_connect(socket);
  ASSERT_GE(fd, 0);
  raw_send(fd, sv::encode_frame(sv::FrameType::kHello,
                                "commscope-hello 1 session 12 threads 4"));
  raw_send(fd, sv::encode_frame(sv::FrameType::kEpochs, "not epochs at all"));
  ::close(fd);

  ASSERT_TRUE(wait_until([&] {
    const sv::ServeStats s = h.server.snapshot();
    return s.drops_bad_magic >= 1 && s.drops_bad_crc >= 1 &&
           s.drops_bad_payload >= 1 && s.sessions_dropped >= 2;
  }));

  // The aggregate never saw a hostile byte, and the daemon still serves.
  EXPECT_TRUE(h.server.merged_matrix() == good.total());
  sv::EpochShipper s5(shipper_options(socket, 13));
  EXPECT_TRUE(s5.ship(make_truth(1, 0xD00D, 100)));
  EXPECT_TRUE(wait_until(
      [&] { return h.server.snapshot().epochs_merged == 4; }));
}

TEST(Serve, RedeliveryDedupesBySessionAndEpochIndex) {
  const std::string socket = next_socket_path();
  ServerHandle h(fast_options(socket));
  ASSERT_TRUE(h.start());

  const cc::EpochTimeline t = make_truth(3, 0x5EED);
  sv::EpochShipper first(shipper_options(socket, 42));
  ASSERT_TRUE(first.ship(t));
  // A second shipper presenting the same session id (a restarted client
  // re-shipping its sidecar) redelivers everything; the ledger absorbs it.
  sv::EpochShipper second(shipper_options(socket, 42));
  ASSERT_TRUE(second.ship(t));

  ASSERT_TRUE(wait_until(
      [&] { return h.server.snapshot().epochs_deduped == 3; }));
  const sv::ServeStats s = h.server.snapshot();
  EXPECT_EQ(s.epochs_merged, 3u);
  EXPECT_TRUE(h.server.merged_matrix() == t.total());
}

TEST(Serve, HeartbeatTimeoutReapsSealsPartialContribution) {
  const std::string socket = next_socket_path();
  sv::ServeOptions o = fast_options(socket);
  o.reap_ms = 100;
  ServerHandle h(o);
  ASSERT_TRUE(h.start());

  sv::EpochShipper s(shipper_options(socket, 7));
  ASSERT_TRUE(s.ship(make_truth(2, 0xFEED)));
  ASSERT_TRUE(wait_until(
      [&] { return h.server.snapshot().epochs_merged == 2; }));

  // The client goes silent (no heartbeat, no bye): reaped, contribution
  // stays merged.
  ASSERT_TRUE(wait_until(
      [&] { return h.server.snapshot().sessions_reaped == 1; }));
  EXPECT_EQ(h.server.snapshot().epochs_merged, 2u);

  // A reaped session is sealed: presenting its id again is refused.
  sv::ShipperOptions again = shipper_options(socket, 7);
  again.max_attempts = 2;
  sv::EpochShipper late(again);
  EXPECT_FALSE(late.ship(make_truth(1, 0xFEED, 50)));
  EXPECT_TRUE(wait_until(
      [&] { return h.server.snapshot().sessions_shed >= 1; }));
  std::remove(again.spill_path.c_str());
}

TEST(Serve, OverloadLadderDegradesInsteadOfDying) {
  const std::string socket = next_socket_path();
  sv::ServeOptions o = fast_options(socket);
  o.mem_budget_bytes = 24 * 1024;
  ServerHandle h(o);
  ASSERT_TRUE(h.start());

  // One epoch per frame so the ladder's frame-sampling is observable.
  sv::EpochShipper s(shipper_options(socket, 3));
  const int kFrames = 300;
  for (int i = 0; i < kFrames; ++i) {
    ASSERT_TRUE(s.ship(make_truth(1, 0x1000 + i, i)))
        << "daemon died at frame " << i;
  }
  ASSERT_TRUE(wait_until([&] {
    const sv::ServeStats st = h.server.snapshot();
    return st.epochs_merged + st.epochs_sampled_out + st.epochs_shed ==
           kFrames;
  }));
  const sv::ServeStats st = h.server.snapshot();
  // The ladder fired, shed accuracy, and every lost epoch is accounted for.
  EXPECT_GE(st.degrade_transitions, 1u);
  EXPECT_GT(st.epochs_sampled_out + st.epochs_shed, 0u);
  EXPECT_LT(st.epochs_merged, static_cast<std::uint64_t>(kFrames));
  EXPECT_GE(st.rung, 1);
}

TEST(Serve, ScrapeEndpointServesParseableMetrics) {
  const std::string socket = next_socket_path();
  ServerHandle h(fast_options(socket));
  ASSERT_TRUE(h.start());
  sv::EpochShipper s(shipper_options(socket, 5));
  ASSERT_TRUE(s.ship(make_truth(2, 0xABC)));

  std::ostringstream text;
  ASSERT_TRUE(sv::scrape_metrics(socket, text));
  EXPECT_NE(text.str().find("# commscope-metrics v1"), std::string::npos);
#if !defined(COMMSCOPE_TELEMETRY_DISABLED)
  // With telemetry compiled out the daemon still answers scrapes, but the
  // snapshot carries only the header.
  EXPECT_NE(text.str().find("serve.epochs.merged"), std::string::npos);
  std::istringstream in(text.str());
  EXPECT_FALSE(ctl::read_metrics(in).empty());
#endif
}

// --- spill + replay ---------------------------------------------------------

TEST(Serve, ShipperSpillsWhenDaemonUnreachable) {
  const std::string socket = "/tmp/cs_serve_nobody_" +
                             std::to_string(::getpid()) + ".sock";
  sv::ShipperOptions o = shipper_options(socket, 9);
  o.max_attempts = 3;
  sv::EpochShipper s(o);
  const cc::EpochTimeline t = make_truth(4, 0x404);
  EXPECT_FALSE(s.ship(t));
  EXPECT_EQ(s.stats().spills, 1u);

  // The spill is a first-class .epochs sidecar: report/diff can read it.
  std::ifstream in(o.spill_path);
  ASSERT_TRUE(in.good());
  const cc::EpochTimeline spilled = cc::read_epochs(in);
  EXPECT_EQ(spilled.epochs.size(), 4u);
  EXPECT_TRUE(spilled.total() == t.total());
  std::remove(o.spill_path.c_str());
}

TEST(Serve, SpillReplaysExactlyOnceAcrossDaemonRestart) {
  const std::string socket = next_socket_path();
  auto h1 = std::make_unique<ServerHandle>(fast_options(socket));
  ASSERT_TRUE(h1->start());

  sv::ShipperOptions o = shipper_options(socket, 777);
  o.max_attempts = 2;
  sv::EpochShipper s1(o);
  ASSERT_TRUE(s1.ship(make_truth(3, 0x111, 0)));  // epochs 0..2 land
  ASSERT_TRUE(wait_until(
      [&] { return h1->server.snapshot().epochs_merged == 3; }));

  // Daemon dies mid-stream; the next flush exhausts retries and spills.
  h1.reset();
  s1.offer(make_truth(3, 0x222, 3));  // epochs 3..5
  EXPECT_FALSE(s1.flush());
  ASSERT_TRUE(file_exists(o.spill_path));
  {
    // Only the unshipped epochs spill — 0..2 are in the shipped ledger.
    std::ifstream in(o.spill_path);
    EXPECT_EQ(cc::read_epochs(in).epochs.size(), 3u);
  }

  // Daemon restarts; a fresh shipper (same session) replays the spill
  // exactly once.
  ServerHandle h2(fast_options(socket));
  ASSERT_TRUE(h2.start());
  sv::EpochShipper s2(o);
  EXPECT_TRUE(s2.flush());
  EXPECT_EQ(s2.stats().replayed, 3u);
  ASSERT_TRUE(wait_until(
      [&] { return h2.server.snapshot().epochs_merged == 3; }));
  EXPECT_EQ(h2.server.snapshot().epochs_deduped, 0u);
  EXPECT_FALSE(file_exists(o.spill_path));  // consumed, not re-replayable

  // A second flush finds nothing pending and changes nothing.
  EXPECT_TRUE(s2.flush());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(h2.server.snapshot().epochs_merged, 3u);
}

// --- the differential soak --------------------------------------------------

TEST(ServeSoak, EightClientsThroughInjectedFaultsMergeBitIdentical) {
  const std::string socket = next_socket_path();
  // Trace the whole soak: client-side ship spans and daemon-side merge
  // spans land in one ring set, each stamped with the shipper's ctx.
  ctl::Tracer::enable();

  // Daemon-side socket faults: the 2nd accept is closed unread, the 5th
  // recv is cut to one byte (splits a header), the 9th recv starts an
  // 8-read EAGAIN storm. None may lose data: the ack protocol redelivers
  // and the dedupe ledger absorbs the overlap.
  cr::FaultPlan server_plan;
  server_plan.accept_fail_at = 2;
  server_plan.short_read_at = 5;
  server_plan.eagain_at = 9;
  server_plan.eagain_len = 8;
  cr::FaultInjector server_injector(server_plan, cr::KillMode::kThrow);

  sv::ServeOptions o = fast_options(socket);
  o.injector = &server_injector;
  ServerHandle h(o);
  ASSERT_TRUE(h.start());

  // Client 2 dies mid-frame on its 2nd frame (the first epochs frame),
  // reconnects and redelivers.
  cr::FaultPlan client_plan;
  client_plan.drop_mid_frame_at = 2;
  cr::FaultInjector client_injector(client_plan, cr::KillMode::kThrow);

  constexpr int kClients = 8;
  constexpr int kEpochsPer = 25;
  std::vector<cc::EpochTimeline> truths;
  truths.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    truths.push_back(make_truth(kEpochsPer, 0x9000 + i));
  }

  std::vector<std::thread> clients;
  std::vector<int> ok(kClients, 0);
  std::vector<std::string> ctxs(kClients);
  std::vector<sv::ShipStats> stats(kClients);
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      sv::ShipperOptions so = shipper_options(socket, 100 + i);
      if (i == 2) so.injector = &client_injector;
      sv::EpochShipper shipper(so);
      ctxs[static_cast<std::size_t>(i)] =
          sv::ctx_to_hex(shipper.trace_ctx());
      if (shipper.ship(truths[static_cast<std::size_t>(i)])) {
        // Client 0 "crashes" without a goodbye — its session stays active
        // so the redelivery below reattaches it.
        if (i != 0) shipper.bye();
        ok[static_cast<std::size_t>(i)] = 1;
      }
      stats[static_cast<std::size_t>(i)] = shipper.stats();
    });
  }
  for (std::thread& t : clients) t.join();
  for (int i = 0; i < kClients; ++i) {
    EXPECT_EQ(ok[static_cast<std::size_t>(i)], 1) << "client " << i;
  }
  ASSERT_TRUE(wait_until([&] {
    return h.server.snapshot().epochs_merged ==
           static_cast<std::uint64_t>(kClients) * kEpochsPer;
  }));

  // A crashed-and-restarted client redelivers everything it ever sealed;
  // the (session, epoch-index) ledger must absorb the overlap without
  // disturbing the aggregate.
  {
    sv::EpochShipper again(shipper_options(socket, 100));
    ASSERT_TRUE(again.ship(truths[0]));
    again.bye();
  }
  ASSERT_TRUE(wait_until([&] {
    return h.server.snapshot().epochs_deduped ==
           static_cast<std::uint64_t>(kEpochsPer);
  }));

  // The acceptance bar: bit-identical to the sum of all 8 ground truths.
  cc::Matrix expected = truths[0].total();
  for (int i = 1; i < kClients; ++i) {
    expected += truths[static_cast<std::size_t>(i)].total();
  }
  EXPECT_TRUE(h.server.merged_matrix() == expected);

  // Every injected fault left a provenance trail.
  const sv::ServeStats st = h.server.snapshot();
  EXPECT_GE(st.accept_failures, 1u) << "accept-fail fault did not fire";
  EXPECT_GE(st.eagain_deferrals, 1u) << "eagain storm did not fire";
  EXPECT_GE(st.frames_torn, 1u) << "drop-mid-frame fault did not fire";
  EXPECT_EQ(st.epochs_merged,
            static_cast<std::uint64_t>(kClients) * kEpochsPer);
  EXPECT_EQ(st.drops_bad_crc, 0u);
  EXPECT_EQ(st.sessions_dropped, 0u);

  // Cross-process context propagation: the daemon echoed every client's ctx
  // on every ack — through torn frames, EAGAIN storms and reconnects.
  for (int i = 0; i < kClients; ++i) {
    const sv::ShipStats& ss = stats[static_cast<std::size_t>(i)];
    EXPECT_GT(ss.acks, 0u) << "client " << i;
    EXPECT_EQ(ss.acks_with_ctx, ss.acks) << "client " << i;
  }

#if !defined(COMMSCOPE_TELEMETRY_DISABLED)
  // And the trace tells the same story: every ctx appears on BOTH a
  // client-side ship.frame span and a daemon-side serve.merge span.
  ctl::Tracer::disable();
  std::stringstream trace_txt;
  ctl::Tracer::write_text(trace_txt);
  const std::string txt = trace_txt.str();
  const auto line_has_ctx = [](const std::string& line,
                               const std::string& hex) {
    const std::string tag = " ctx=" + hex;
    const std::size_t at = line.find(tag);
    if (at == std::string::npos) return false;
    const std::size_t end = at + tag.size();
    return end == line.size() || line[end] == ' ';
  };
  for (int i = 0; i < kClients; ++i) {
    const std::string& hex = ctxs[static_cast<std::size_t>(i)];
    bool ship_frame = false;
    bool serve_merge = false;
    std::istringstream lines(txt);
    std::string line;
    while (std::getline(lines, line)) {
      if (!line_has_ctx(line, hex)) continue;
      if (line.find("ship.frame") != std::string::npos) ship_frame = true;
      if (line.find("serve.merge") != std::string::npos) serve_merge = true;
    }
    EXPECT_TRUE(ship_frame) << "client " << i << " ctx " << hex
                            << " has no ship.frame span";
    EXPECT_TRUE(serve_merge) << "client " << i << " ctx " << hex
                             << " has no serve.merge span";
  }

  // CI artifacts: the soak's Chrome trace (one file, both sides of the
  // wire) and the daemon metrics snapshot — a scrape-under-load check in
  // one move.
  std::ofstream trace_json("serve_soak.trace.json");
  ctl::Tracer::write_chrome_trace(trace_json);
#endif  // COMMSCOPE_TELEMETRY_DISABLED
  std::ofstream artifact("serve_soak.metrics");
  ASSERT_TRUE(sv::scrape_metrics(socket, artifact));
  std::ofstream prom("serve_soak.prom");
  ASSERT_TRUE(sv::scrape_metrics(socket, prom, 2000, true));
}

// --- durability: WAL + snapshot + recovery ----------------------------------

std::string next_state_dir() {
  static int n = 0;
  const std::string dir = "/tmp/cs_serve_state_" +
                          std::to_string(::getpid()) + "_" +
                          std::to_string(++n);
  std::remove((dir + "/wal.log").c_str());
  std::remove((dir + "/snapshot.commscope").c_str());
  std::remove((dir + "/snapshot.commscope.tmp").c_str());
  ::rmdir(dir.c_str());
  return dir;
}

sv::ServeOptions durable_options(const std::string& socket,
                                 const std::string& state_dir) {
  sv::ServeOptions o = fast_options(socket);
  o.state_dir = state_dir;
  o.fsync_policy = sv::FsyncPolicy::kOnCompaction;  // tests favor speed
  return o;
}

std::string epochs_document(const cc::EpochTimeline& t) {
  std::ostringstream os;
  cc::write_epochs(os, t);
  return os.str();
}

TEST(ServeDurable, RestartRecoversLedgerAndDedupesRedelivery) {
  const std::string socket = next_socket_path();
  const std::string state = next_state_dir();
  const cc::EpochTimeline truth = make_truth(6, 0xD0D0);

  {
    ServerHandle h(durable_options(socket, state));
    ASSERT_TRUE(h.start());
    sv::EpochShipper s(shipper_options(socket, 55));
    ASSERT_TRUE(s.ship(truth));
    ASSERT_TRUE(wait_until(
        [&] { return h.server.snapshot().epochs_merged == 6; }));
    const sv::ServeStats st = h.server.snapshot();
    EXPECT_GE(st.wal_records, 2u);  // hello + at least one epochs record
    EXPECT_FALSE(st.wal_failed);
  }  // ~ServerHandle stops the daemon; exit path compacts

  // Restart on the same state dir: the dedupe ledger and aggregate come
  // back, so a client re-sending hello with the same session id and
  // redelivering everything merges exactly once.
  ServerHandle h2(durable_options(socket, state));
  ASSERT_TRUE(h2.start());
  {
    const sv::ServeStats st = h2.server.snapshot();
    EXPECT_TRUE(st.recovered);
    EXPECT_EQ(st.recovered_sessions, 1u);
  }
  EXPECT_TRUE(h2.server.merged_matrix() == truth.total());

  sv::EpochShipper again(shipper_options(socket, 55));
  ASSERT_TRUE(again.ship(truth));
  ASSERT_TRUE(wait_until(
      [&] { return h2.server.snapshot().epochs_deduped == 6; }));
  const sv::ServeStats st = h2.server.snapshot();
  EXPECT_EQ(st.epochs_merged, 0u);  // nothing new merged this process
  EXPECT_TRUE(h2.server.merged_matrix() == truth.total());
}

TEST(ServeDurable, PropagatedContextStitchesClientAndDaemonSpans) {
  const std::string socket = next_socket_path();
  const std::string state = next_state_dir();
  ctl::Tracer::enable();

  ServerHandle h(durable_options(socket, state));
  ASSERT_TRUE(h.start());

  std::string hexes[2];
  for (int i = 0; i < 2; ++i) {
    sv::EpochShipper s(shipper_options(socket, 200 + i));
    hexes[i] = sv::ctx_to_hex(s.trace_ctx());
    ASSERT_TRUE(s.ship(make_truth(4, 0xC0DE + i)));
    s.bye();
    const sv::ShipStats& ss = s.stats();
    EXPECT_GT(ss.acks, 0u);
    EXPECT_EQ(ss.acks_with_ctx, ss.acks) << "client " << i;
  }
  ASSERT_TRUE(
      wait_until([&] { return h.server.snapshot().epochs_merged == 8; }));
  h.stop();
  ctl::Tracer::disable();

#if !defined(COMMSCOPE_TELEMETRY_DISABLED)
  // One trace, two processes' worth of spans: for each client ctx, the
  // client-side frame span and the daemon-side frame/merge/journal spans
  // all carry the same propagated context id.
  std::stringstream txt;
  ctl::Tracer::write_text(txt);
  const std::string trace = txt.str();
  for (const std::string& hex : hexes) {
    for (const char* span :
         {"ship.frame", "serve.frame", "serve.merge", "serve.journal"}) {
      bool found = false;
      std::istringstream lines(trace);
      std::string line;
      const std::string tag = " ctx=" + hex;
      while (std::getline(lines, line) && !found) {
        const std::size_t at = line.find(tag);
        if (at == std::string::npos ||
            line.find(span) == std::string::npos) {
          continue;
        }
        const std::size_t end = at + tag.size();
        found = end == line.size() || line[end] == ' ';
      }
      EXPECT_TRUE(found) << span << " span missing for ctx " << hex;
    }
  }
#endif  // COMMSCOPE_TELEMETRY_DISABLED
}

TEST(ServeDurable, TornWalTailToleratedAndQuarantined) {
  const std::string socket = next_socket_path();
  const std::string state = next_state_dir();
  const cc::EpochTimeline t1 = make_truth(3, 0xE1, 0);
  const cc::EpochTimeline t2 = make_truth(3, 0xE2, 3);

  {
    // Build a WAL by hand: hello, two epochs records, then a half-written
    // record — exactly what a kill -9 mid-append leaves behind.
    sv::JournalOptions jo;
    jo.dir = state;
    jo.policy = sv::FsyncPolicy::kOnCompaction;
    jo.compact_every = 0;
    sv::Journal j(jo);
    std::string snapshot, err;
    std::vector<sv::WalRecord> tail;
    ASSERT_TRUE(j.recover(snapshot, tail, err)) << err;
    ASSERT_TRUE(j.open(err)) << err;
    ASSERT_TRUE(j.append(sv::WalRecordType::kHello, "session 77 threads 4",
                         false));
    ASSERT_TRUE(j.append(sv::WalRecordType::kEpochs,
                         "session 77\n" + epochs_document(t1), true));
    ASSERT_TRUE(j.append(sv::WalRecordType::kEpochs,
                         "session 77\n" + epochs_document(t2), true));
    const std::string torn = sv::encode_wal_record(
        sv::WalRecordType::kEpochs, 99, "session 77\nnever finished");
    std::ofstream wal(j.wal_path(), std::ios::binary | std::ios::app);
    wal.write(torn.data(),
              static_cast<std::streamsize>(torn.size() / 2));
  }

  ServerHandle h(durable_options(socket, state));
  ASSERT_TRUE(h.start());
  const sv::ServeStats st = h.server.snapshot();
  EXPECT_TRUE(st.recovered);
  EXPECT_TRUE(st.recovered_torn_tail);
  EXPECT_EQ(st.recovery_records, 3u);
  EXPECT_EQ(st.recovered_epochs, 6u);
  cc::Matrix expected = t1.total();
  expected += t2.total();
  EXPECT_TRUE(h.server.merged_matrix() == expected);
  // The post-recovery compaction quarantined the damage: the WAL was
  // truncated, so a second recovery sees a clean (empty) log.
  struct stat wal_st{};
  ASSERT_EQ(::stat((state + "/wal.log").c_str(), &wal_st), 0);
  EXPECT_EQ(wal_st.st_size, 0);
}

TEST(ServeDurable, NoRecoverDiscardsPersistedState) {
  const std::string socket = next_socket_path();
  const std::string state = next_state_dir();
  const cc::EpochTimeline truth = make_truth(4, 0xDEAD);
  {
    ServerHandle h(durable_options(socket, state));
    ASSERT_TRUE(h.start());
    sv::EpochShipper s(shipper_options(socket, 88));
    ASSERT_TRUE(s.ship(truth));
    ASSERT_TRUE(wait_until(
        [&] { return h.server.snapshot().epochs_merged == 4; }));
  }
  sv::ServeOptions o = durable_options(socket, state);
  o.no_recover = true;
  ServerHandle h2(o);
  ASSERT_TRUE(h2.start());
  EXPECT_FALSE(h2.server.snapshot().recovered);
  EXPECT_EQ(h2.server.merged_timeline().epochs.size(), 0u);
  // The discarded ledger means the same session id merges fresh.
  sv::EpochShipper again(shipper_options(socket, 88));
  ASSERT_TRUE(again.ship(truth));
  ASSERT_TRUE(wait_until(
      [&] { return h2.server.snapshot().epochs_merged == 4; }));
}

TEST(ServeDurable, CorruptSnapshotRefusesToStart) {
  const std::string socket = next_socket_path();
  const std::string state = next_state_dir();
  {
    ServerHandle h(durable_options(socket, state));
    ASSERT_TRUE(h.start());
    sv::EpochShipper s(shipper_options(socket, 99));
    ASSERT_TRUE(s.ship(make_truth(2, 0xBAD)));
    ASSERT_TRUE(wait_until(
        [&] { return h.server.snapshot().epochs_merged == 2; }));
  }
  {
    // Flip one byte mid-snapshot: the CRC trailer must catch it and the
    // daemon must refuse to start (silent discard needs --no-recover).
    std::fstream f(state + "/snapshot.commscope",
                   std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.good());
    f.seekp(40);
    f.put('~');
  }
  sv::ServeServer refused(durable_options(socket, state));
  EXPECT_FALSE(refused.open());
  EXPECT_NE(refused.last_error().find("snapshot"), std::string::npos);
}

TEST(ServeDurable, SignalDrainSealsSessionsAndSnapshots) {
  const std::string socket = next_socket_path();
  const std::string state = next_state_dir();
  static volatile std::sig_atomic_t drain = 0;
  drain = 0;
  sv::ServeOptions o = durable_options(socket, state);
  o.drain_flag = &drain;
  ServerHandle h(o);
  ASSERT_TRUE(h.start());
  const cc::EpochTimeline truth = make_truth(5, 0x51);
  sv::EpochShipper s(shipper_options(socket, 61));
  ASSERT_TRUE(s.ship(truth));
  ASSERT_TRUE(wait_until(
      [&] { return h.server.snapshot().epochs_merged == 5; }));

  drain = 1;  // what the SIGTERM handler does
  ASSERT_TRUE(wait_until([&] { return h.server.snapshot().drained; }));
  h.stop();
  const sv::ServeStats st = h.server.snapshot();
  EXPECT_TRUE(st.drained);
  EXPECT_EQ(st.sessions_sealed, 1u);

  // The drained snapshot restores; the sealed session stays sealed, so the
  // id is refused on reconnect.
  ServerHandle h2(durable_options(socket, state));
  ASSERT_TRUE(h2.start());
  EXPECT_TRUE(h2.server.merged_matrix() == truth.total());
  sv::ShipperOptions so = shipper_options(socket, 61);
  so.max_attempts = 2;
  sv::EpochShipper late(so);
  EXPECT_FALSE(late.ship(make_truth(1, 0x52, 90)));
  EXPECT_TRUE(wait_until(
      [&] { return h2.server.snapshot().sessions_shed >= 1; }));
  std::remove(so.spill_path.c_str());
}

TEST(ServeDurable, WalWriteShortFailsJournalDaemonStaysLive) {
  const std::string socket = next_socket_path();
  const std::string state = next_state_dir();
  cr::FaultPlan plan;
  plan.wal_write_short_at = 2;  // the first epochs append short-writes
  cr::FaultInjector injector(plan, cr::KillMode::kThrow);
  sv::ServeOptions o = durable_options(socket, state);
  o.injector = &injector;
  ServerHandle h(o);
  ASSERT_TRUE(h.start());
  const cc::EpochTimeline truth = make_truth(3, 0x77);
  sv::EpochShipper s(shipper_options(socket, 71));
  ASSERT_TRUE(s.ship(truth));
  ASSERT_TRUE(wait_until(
      [&] { return h.server.snapshot().epochs_merged == 3; }));
  const sv::ServeStats st = h.server.snapshot();
  // Availability first: the journal gave up (counted), the merge did not.
  EXPECT_TRUE(st.wal_failed);
  EXPECT_GE(st.wal_write_errors, 1u);
  EXPECT_TRUE(h.server.merged_matrix() == truth.total());
}

TEST(ServeDurable, FsyncFailureDegradesDurabilityLadder) {
  const std::string socket = next_socket_path();
  const std::string state = next_state_dir();
  cr::FaultPlan plan;
  plan.wal_fsync_fail_at = 1;
  cr::FaultInjector injector(plan, cr::KillMode::kThrow);
  sv::ServeOptions o = durable_options(socket, state);
  o.fsync_policy = sv::FsyncPolicy::kPerAck;
  o.injector = &injector;
  ServerHandle h(o);
  ASSERT_TRUE(h.start());
  sv::EpochShipper s(shipper_options(socket, 72));
  ASSERT_TRUE(s.ship(make_truth(2, 0x88)));
  ASSERT_TRUE(wait_until(
      [&] { return h.server.snapshot().epochs_merged == 2; }));
  const sv::ServeStats st = h.server.snapshot();
  EXPECT_GE(st.wal_fsync_failures, 1u);
  // A failed barrier walks the ladder down instead of killing the daemon.
  EXPECT_GT(st.wal_rung, static_cast<int>(sv::FsyncPolicy::kPerAck));
  EXPECT_FALSE(st.wal_failed);
}

TEST(ServeDurable, ReplaysTenThousandRecordWalTail) {
  const std::string socket = next_socket_path();
  const std::string state = next_state_dir();
  constexpr int kRecords = 10'000;
  {
    sv::JournalOptions jo;
    jo.dir = state;
    jo.policy = sv::FsyncPolicy::kOnCompaction;
    jo.compact_every = 0;  // never compact: everything stays in the tail
    sv::Journal j(jo);
    std::string snapshot, err;
    std::vector<sv::WalRecord> tail;
    ASSERT_TRUE(j.recover(snapshot, tail, err)) << err;
    ASSERT_TRUE(j.open(err)) << err;
    ASSERT_TRUE(j.append(sv::WalRecordType::kHello, "session 5 threads 4",
                         false));
    for (int i = 1; i < kRecords; ++i) {
      const cc::EpochTimeline one =
          make_truth(1, 0x4000 + static_cast<std::uint64_t>(i),
                     static_cast<std::uint64_t>(i));
      ASSERT_TRUE(j.append(sv::WalRecordType::kEpochs,
                           "session 5\n" + epochs_document(one), false));
    }
  }
  sv::ServeOptions o = durable_options(socket, state);
  o.merged_ring = 64;  // the bounded ring must absorb a much longer replay
  o.mem_budget_bytes = 32u << 20;
  ServerHandle h(o);
  ASSERT_TRUE(h.start());
  const sv::ServeStats st = h.server.snapshot();
  EXPECT_EQ(st.recovery_records, static_cast<std::uint64_t>(kRecords));
  EXPECT_EQ(st.recovered_epochs, static_cast<std::uint64_t>(kRecords - 1));
  const cc::EpochTimeline merged = h.server.merged_timeline();
  EXPECT_EQ(merged.sealed, static_cast<std::uint64_t>(kRecords - 1));
  EXPECT_EQ(merged.epochs.size(), 64u);
}

// --- the chaos harness: kill -9 across every window -------------------------

pid_t spawn_daemon(const std::string& cli, const std::string& socket,
                   const std::string& state, const char* fault,
                   const std::string& extra = "") {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  if (fault != nullptr) {
    ::setenv("COMMSCOPE_FAULT", fault, 1);
  } else {
    ::unsetenv("COMMSCOPE_FAULT");
  }
  std::vector<std::string> args = {cli,
                                   "serve",
                                   "--socket=" + socket,
                                   "--state-dir=" + state,
                                   "--reap-ms=0",
                                   "--quiet"};
  if (!extra.empty()) args.push_back(extra);
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& a : args) argv.push_back(a.data());
  argv.push_back(nullptr);
  ::execv(cli.c_str(), argv.data());
  ::_exit(127);
}

int await_exit(pid_t pid) {
  int status = 0;
  ::waitpid(pid, &status, 0);
  return status;
}

// The daemon binds its socket only after recovery replay + the startup
// compaction, which on a loaded single-core box can outlast a client's
// whole retry budget. The fault windows below only fire once a frame is
// journaled, so a client that gives up before the socket exists turns the
// await_exit into an infinite hang. Gate every post-spawn ship on the
// socket actually accepting.
bool wait_listening(const std::string& socket, int deadline_ms = 10000) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s", socket.c_str());
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(deadline_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd >= 0) {
      const int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                               sizeof(addr));
      ::close(fd);
      if (rc == 0) return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return false;
}

TEST(ServeChaos, KillNineAtEveryWindowRecoversBitIdentical) {
  const char* cli = std::getenv("COMMSCOPE_CLI");
  if (cli == nullptr) {
    GTEST_SKIP() << "COMMSCOPE_CLI not set (needs the commscope binary)";
  }
  const std::string socket = next_socket_path();
  const std::string state = next_state_dir();
  const cc::EpochTimeline t1 = make_truth(25, 0xC1A0);
  const cc::EpochTimeline t2 = make_truth(25, 0xC1A1);
  const cc::EpochTimeline t3 = make_truth(25, 0xC1A2);

  const auto reship = [&](std::uint64_t session, const cc::EpochTimeline& t) {
    // Full redelivery after every crash: the recovered dedupe ledger turns
    // at-least-once into exactly-once.
    sv::ShipperOptions so = shipper_options(socket, session);
    so.max_attempts = 20;
    sv::EpochShipper s(so);
    s.flush();  // replay any spill from the crashed attempt
    return s.ship(t);
  };

  // Window 1 — post-merge / pre-ack: the daemon SIGKILLs itself halfway
  // through writing the first epochs record (wal-torn-tail). Nothing was
  // acked, so the client's redelivery must land everything exactly once.
  pid_t pid = spawn_daemon(cli, socket, state, "wal-torn-tail:2");
  ASSERT_TRUE(wait_listening(socket)) << "window-1 daemon never bound";
  {
    sv::ShipperOptions so = shipper_options(socket, 201);
    so.max_attempts = 3;
    sv::EpochShipper s(so);
    (void)s.ship(t1);  // dies under us; spill or failure both fine
  }
  int status = await_exit(pid);
  ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL)
      << "wal-torn-tail fault did not SIGKILL the daemon";

  pid = spawn_daemon(cli, socket, state, nullptr);
  ASSERT_TRUE(wait_listening(socket)) << "post-window-1 daemon never bound";
  ASSERT_TRUE(reship(201, t1));

  // Window 2 — mid-compaction / mid-snapshot: --compact-every=1 compacts
  // after every record; the injected crash tears the snapshot tmp file.
  // The ack for t2 was already sent, so recovery MUST reproduce it from
  // the previous snapshot + WAL.
  ::kill(pid, SIGKILL);
  await_exit(pid);
  pid = spawn_daemon(cli, socket, state, "snapshot-crash-mid-write:2",
                     "--compact-every=1");
  ASSERT_TRUE(wait_listening(socket)) << "window-2 daemon never bound";
  {
    sv::ShipperOptions so = shipper_options(socket, 202);
    so.max_attempts = 3;
    sv::EpochShipper s(so);
    (void)s.ship(t2);
  }
  status = await_exit(pid);
  ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL)
      << "snapshot-crash-mid-write fault did not SIGKILL the daemon";

  pid = spawn_daemon(cli, socket, state, nullptr);
  ASSERT_TRUE(wait_listening(socket)) << "post-window-2 daemon never bound";
  ASSERT_TRUE(reship(202, t2));

  // Window 3 — randomized external kill -9 while a client streams (covers
  // mid-frame and every point in between), repeated.
  int rounds = 3;
  if (const char* env = std::getenv("COMMSCOPE_CHAOS_ROUNDS")) {
    rounds = std::max(1, std::atoi(env));
  }
  cs::SplitMix64 rng(0xC4A05);
  for (int r = 0; r < rounds; ++r) {
    std::thread client([&] {
      sv::ShipperOptions so = shipper_options(socket, 203);
      so.max_attempts = 2;
      sv::EpochShipper s(so);
      (void)s.ship(t3);
    });
    std::this_thread::sleep_for(
        std::chrono::milliseconds(1 + rng.next_below(40)));
    ::kill(pid, SIGKILL);
    await_exit(pid);
    client.join();
    pid = spawn_daemon(cli, socket, state, nullptr);
    ASSERT_TRUE(wait_listening(socket)) << "window-3 daemon never bound";
  }
  ASSERT_TRUE(reship(203, t3));

  // Graceful exit: SIGTERM drains (seal + final snapshot) and exits 0.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  ::kill(pid, SIGTERM);
  status = await_exit(pid);
  ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
      << "SIGTERM drain did not exit 0 (status " << status << ")";

  // The acceptance bar: after four crash windows and a drain, the merged
  // matrix is bit-identical to the sum of the three ground truths.
  ServerHandle verify(durable_options(next_socket_path(), state));
  ASSERT_TRUE(verify.start());
  const sv::ServeStats st = verify.server.snapshot();
  EXPECT_TRUE(st.recovered);
  EXPECT_EQ(st.recovered_sessions, 3u);
  cc::Matrix expected = t1.total();
  expected += t2.total();
  expected += t3.total();
  EXPECT_TRUE(verify.server.merged_matrix() == expected);

  // Metrics artifact for the CI chaos job.
  std::ofstream artifact("serve_chaos.metrics");
  artifact << "# chaos: sessions=" << st.recovered_sessions
           << " merged-cells-ok=1\n";
  for (std::uint64_t sid : {201u, 202u, 203u}) {
    std::remove((socket + "." + std::to_string(sid) + ".spill.epochs").c_str());
  }
}

}  // namespace
