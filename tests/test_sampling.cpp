// SamplingSink tests: duty-cycle bookkeeping, burst structure, loop-event
// passthrough, and end-to-end accuracy of scaled sampled profiles.
#include <gtest/gtest.h>

#include <memory>

#include "core/profiler.hpp"
#include "instrument/sampling.hpp"
#include "support/stats.hpp"
#include "threading/thread_pool.hpp"
#include "workloads/workload.hpp"

namespace cc = commscope::core;
namespace ci = commscope::instrument;
namespace ct = commscope::threading;
namespace cw = commscope::workloads;

namespace {

class CountingSink final : public ci::AccessSink {
 public:
  void on_thread_begin(int) override { ++thread_begins; }
  void on_loop_enter(int, ci::LoopId) override { ++loop_enters; }
  void on_loop_exit(int) override { ++loop_exits; }
  void on_access(int, std::uintptr_t addr, std::uint32_t,
                 ci::AccessKind) override {
    ++accesses;
    last_addr = addr;
  }
  void finalize() override { ++finalizes; }

  int thread_begins = 0;
  int loop_enters = 0;
  int loop_exits = 0;
  int finalizes = 0;
  int accesses = 0;
  std::uintptr_t last_addr = 0;
};

}  // namespace

TEST(SamplingSink, ZeroOffForwardsEverything) {
  CountingSink inner;
  ci::SamplingSink sampler(inner, {.burst_on = 4, .burst_off = 0});
  for (int i = 0; i < 100; ++i) {
    sampler.on_access(0, 0x1000, 8, ci::AccessKind::kRead);
  }
  EXPECT_EQ(inner.accesses, 100);
  EXPECT_DOUBLE_EQ(sampler.duty_cycle(), 1.0);
  EXPECT_DOUBLE_EQ(sampler.scale_factor(), 1.0);
}

TEST(SamplingSink, BurstStructureForwardsPrefixOfEachCycle) {
  CountingSink inner;
  ci::SamplingSink sampler(inner, {.burst_on = 3, .burst_off = 5});
  // Cycle of 8: positions 0,1,2 forwarded; 3..7 dropped.
  for (int i = 0; i < 16; ++i) {
    sampler.on_access(0, static_cast<std::uintptr_t>(0x2000 + i), 1,
                      ci::AccessKind::kRead);
  }
  EXPECT_EQ(inner.accesses, 6);
  EXPECT_EQ(sampler.forwarded(), 6u);
  EXPECT_EQ(sampler.dropped(), 10u);
  EXPECT_DOUBLE_EQ(sampler.duty_cycle(), 3.0 / 8.0);
}

TEST(SamplingSink, PerThreadCountersAreIndependent) {
  CountingSink inner;
  ci::SamplingSink sampler(inner, {.burst_on = 1, .burst_off = 1});
  // Thread 0 takes 3 accesses (positions 0,1,2 -> 2 forwarded), thread 1
  // takes 1 (position 0 -> forwarded): independent cycles.
  for (int i = 0; i < 3; ++i) {
    sampler.on_access(0, 0x3000, 1, ci::AccessKind::kRead);
  }
  sampler.on_access(1, 0x3000, 1, ci::AccessKind::kRead);
  EXPECT_EQ(inner.accesses, 3);
}

TEST(SamplingSink, ControlEventsAlwaysPassThrough) {
  CountingSink inner;
  ci::SamplingSink sampler(inner, {.burst_on = 1, .burst_off = 1000});
  sampler.on_thread_begin(0);
  sampler.on_loop_enter(0, 0);
  sampler.on_loop_exit(0);
  sampler.finalize();
  EXPECT_EQ(inner.thread_begins, 1);
  EXPECT_EQ(inner.loop_enters, 1);
  EXPECT_EQ(inner.loop_exits, 1);
  EXPECT_EQ(inner.finalizes, 1);
}

TEST(SamplingSink, SampledProfilePreservesShapeAndBoundsVolume) {
  // A dependency survives sampling only if its producing write AND the
  // consumer's first read both land in on-bursts, so the sampled volume is
  // NOT duty-cycle-linear (bench/ablation_sampling quantifies the bias).
  // The invariants that must hold: sampling never invents volume, captures a
  // nonzero subset at this duty cycle, and preserves the matrix shape well
  // enough for pattern detection.
  ct::ThreadTeam team(4);
  const cw::Workload* w = cw::find("ocean_ncp");

  cc::ProfilerOptions o;
  o.max_threads = 4;
  o.backend = cc::Backend::kExact;
  auto full = std::make_unique<cc::Profiler>(o);
  ASSERT_TRUE(w->run(cw::Scale::kDev, team, full.get()).ok);

  auto sampled = std::make_unique<cc::Profiler>(o);
  ci::SamplingSink sampler(*sampled, {.burst_on = 256, .burst_off = 768});
  ASSERT_TRUE(w->run(cw::Scale::kDev, team, &sampler).ok);
  EXPECT_DOUBLE_EQ(sampler.duty_cycle(), 0.25);
  EXPECT_GT(sampler.dropped(), sampler.forwarded());

  const auto full_total =
      static_cast<double>(full->communication_matrix().total());
  const auto sampled_total =
      static_cast<double>(sampled->communication_matrix().total());
  ASSERT_GT(full_total, 0.0);
  EXPECT_GT(sampled_total, 0.0);
  EXPECT_LE(sampled_total, full_total);  // sampling never invents volume
  // The duty-cycle-scaled estimate is a sane order-of-magnitude bound even
  // though pair-survival makes it biased low.
  EXPECT_GE(sampled_total * sampler.scale_factor(),
            full_total * sampler.duty_cycle());

  const double shape = commscope::support::cosine_similarity(
      full->communication_matrix().normalized(),
      sampled->communication_matrix().normalized());
  EXPECT_GT(shape, 0.75);
}
