// Pattern-classification tests (Section VI): generator topology, feature
// invariants, classifier accuracy (the >97% claim at corpus scale), and the
// false-positive-noise robustness the paper attributes to the ML stage.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "patterns/classifier.hpp"
#include "patterns/features.hpp"
#include "patterns/generators.hpp"

namespace cp = commscope::patterns;
namespace cc = commscope::core;
namespace cs = commscope::support;

namespace {

cp::GeneratorOptions clean_opts() {
  cp::GeneratorOptions o;
  o.threads = 16;
  o.jitter = 0.15;
  o.background = 0.0;
  return o;
}

}  // namespace

TEST(Generators, AllClassesProduceNonEmptyZeroDiagonalMatrices) {
  cs::SplitMix64 rng(1);
  for (const cp::PatternClass cls : cp::kAllPatternClasses) {
    const cc::Matrix m = cp::generate(cls, clean_opts(), rng);
    EXPECT_GT(m.total(), 0u) << cp::to_string(cls);
    for (int i = 0; i < m.size(); ++i) {
      EXPECT_EQ(m.at(i, i), 0u) << cp::to_string(cls);  // no self-RAW
    }
  }
}

TEST(Generators, StructuredGridIsBandDominated) {
  cs::SplitMix64 rng(2);
  const cc::Matrix m =
      cp::generate(cp::PatternClass::kStructuredGrid, clean_opts(), rng);
  std::uint64_t band = 0;
  for (int i = 0; i + 1 < m.size(); ++i) {
    band += m.at(i, i + 1) + m.at(i + 1, i);
  }
  EXPECT_GT(static_cast<double>(band), 0.7 * static_cast<double>(m.total()));
}

TEST(Generators, MasterWorkerIsHubDominated) {
  cs::SplitMix64 rng(3);
  const cc::Matrix m =
      cp::generate(cp::PatternClass::kMasterWorker, clean_opts(), rng);
  std::uint64_t hub = 0;
  for (int i = 0; i < m.size(); ++i) hub += m.at(0, i) + m.at(i, 0);
  EXPECT_EQ(hub, m.total());
}

TEST(Generators, PipelineIsPureSuperdiagonal) {
  cs::SplitMix64 rng(4);
  const cc::Matrix m =
      cp::generate(cp::PatternClass::kPipeline, clean_opts(), rng);
  std::uint64_t chain = 0;
  for (int i = 0; i + 1 < m.size(); ++i) chain += m.at(i, i + 1);
  EXPECT_EQ(chain, m.total());
}

TEST(Generators, CorpusIsBalancedAndLabelled) {
  const auto corpus = cp::make_corpus(10, clean_opts(), 42);
  EXPECT_EQ(corpus.size(), 70u);
  int counts[7] = {};
  for (const auto& lm : corpus) ++counts[static_cast<int>(lm.label)];
  for (int c : counts) EXPECT_EQ(c, 10);
}

TEST(Features, ZeroMatrixYieldsZeroFeatures) {
  const cp::FeatureVector f = cp::extract_features(cc::Matrix(8));
  for (double v : f) EXPECT_EQ(v, 0.0);
}

TEST(Features, MassRatiosStayInUnitRange) {
  cs::SplitMix64 rng(5);
  cp::GeneratorOptions noisy = clean_opts();
  noisy.background = 0.2;
  for (const cp::PatternClass cls : cp::kAllPatternClasses) {
    const cp::FeatureVector f =
        cp::extract_features(cp::generate(cls, noisy, rng));
    for (int i = 0; i < cp::kFeatureCount; ++i) {
      if (i == 4) {  // directionality lives in [-1, 1]
        EXPECT_GE(f[4], -1.0);
        EXPECT_LE(f[4], 1.0);
      } else {
        EXPECT_GE(f[static_cast<std::size_t>(i)], 0.0) << i;
        EXPECT_LE(f[static_cast<std::size_t>(i)], 1.0 + 1e-9) << i;
      }
    }
  }
}

TEST(Features, ScaleInvariance) {
  cs::SplitMix64 rng(6);
  const cc::Matrix m =
      cp::generate(cp::PatternClass::kSpectral, clean_opts(), rng);
  cc::Matrix scaled(m.size());
  for (int p = 0; p < m.size(); ++p) {
    for (int c = 0; c < m.size(); ++c) scaled.at(p, c) = m.at(p, c) * 1000;
  }
  const cp::FeatureVector a = cp::extract_features(m);
  const cp::FeatureVector b = cp::extract_features(scaled);
  for (int i = 0; i < cp::kFeatureCount; ++i) {
    EXPECT_NEAR(a[static_cast<std::size_t>(i)], b[static_cast<std::size_t>(i)],
                1e-6);
  }
}

TEST(Features, HandcraftedSignatures) {
  // Pipeline: full directionality, full superdiagonal mass.
  cc::Matrix pipe(8);
  for (int i = 0; i + 1 < 8; ++i) pipe.at(i, i + 1) = 100;
  const cp::FeatureVector f = cp::extract_features(pipe);
  EXPECT_DOUBLE_EQ(f[0], 1.0);  // neighbour band
  EXPECT_DOUBLE_EQ(f[3], 0.0);  // fully asymmetric
  EXPECT_DOUBLE_EQ(f[4], 1.0);  // all mass above the diagonal

  // Symmetric halo exchange: symmetry 1, directionality 0.
  cc::Matrix halo(8);
  for (int i = 0; i + 1 < 8; ++i) {
    halo.at(i, i + 1) = 50;
    halo.at(i + 1, i) = 50;
  }
  const cp::FeatureVector g = cp::extract_features(halo);
  EXPECT_DOUBLE_EQ(g[3], 1.0);
  EXPECT_DOUBLE_EQ(g[4], 0.0);
}

TEST(FeatureDistance, ZeroForIdentical) {
  const cp::FeatureVector f{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12};
  EXPECT_DOUBLE_EQ(cp::feature_distance(f, f), 0.0);
}

// --- classifier accuracy ------------------------------------------------------

class ClassifierAccuracy : public ::testing::Test {
 protected:
  void SetUp() override {
    cp::GeneratorOptions opts = clean_opts();
    opts.background = 0.05;
    opts.jitter = 0.25;
    train_ = cp::featurize(cp::make_corpus(40, opts, 1001));
    test_ = cp::featurize(cp::make_corpus(25, opts, 2002));
  }
  std::vector<cp::Example> train_;
  std::vector<cp::Example> test_;
};

TEST_F(ClassifierAccuracy, NearestCentroidReachesPaperAccuracy) {
  cp::NearestCentroidClassifier clf;
  clf.train(train_);
  const cp::Evaluation ev = cp::evaluate(clf, test_);
  EXPECT_GE(ev.accuracy, 0.97) << ev.to_string();
}

TEST_F(ClassifierAccuracy, KnnReachesPaperAccuracy) {
  cp::KnnClassifier clf(5);
  clf.train(train_);
  const cp::Evaluation ev = cp::evaluate(clf, test_);
  EXPECT_GE(ev.accuracy, 0.97) << ev.to_string();
}

TEST_F(ClassifierAccuracy, ConfusionDiagonalDominates) {
  cp::NearestCentroidClassifier clf;
  clf.train(train_);
  const cp::Evaluation ev = cp::evaluate(clf, test_);
  for (std::size_t a = 0; a < ev.confusion.size(); ++a) {
    int row_total = 0;
    for (int v : ev.confusion[a]) row_total += v;
    EXPECT_GT(ev.confusion[a][a], row_total / 2);
  }
}

TEST(ClassifierRobustness, SurvivesFalsePositiveContamination) {
  // Section VI: "the negative effect of false positives could be compensated
  // by using machine learning classification methods". Train on clean
  // matrices, test on matrices contaminated with background traffic at the
  // level a small signature memory would inject.
  cp::GeneratorOptions clean = clean_opts();
  cp::GeneratorOptions dirty = clean_opts();
  dirty.background = 0.3;
  dirty.background_level = 0.15;
  cp::KnnClassifier clf(7);
  clf.train(cp::featurize(cp::make_corpus(40, clean, 3003)));
  const cp::Evaluation ev =
      cp::evaluate(clf, cp::featurize(cp::make_corpus(20, dirty, 4004)));
  EXPECT_GE(ev.accuracy, 0.85) << ev.to_string();
}

TEST(Classifier, PredictOnMatrixOverloadAgrees) {
  cp::NearestCentroidClassifier clf;
  cp::GeneratorOptions opts = clean_opts();
  clf.train(cp::featurize(cp::make_corpus(30, opts, 5005)));
  cs::SplitMix64 rng(6006);
  const cc::Matrix m = cp::generate(cp::PatternClass::kPipeline, opts, rng);
  EXPECT_EQ(clf.predict(m), clf.predict(cp::extract_features(m)));
}

TEST(PatternNames, AllDistinct) {
  std::set<std::string> names;
  for (const cp::PatternClass cls : cp::kAllPatternClasses) {
    names.insert(cp::to_string(cls));
  }
  EXPECT_EQ(names.size(), std::size(cp::kAllPatternClasses));
}

// --- decision tree (CART) ------------------------------------------------------

#include "patterns/decision_tree.hpp"

TEST(DecisionTree, PerfectFitOnSeparableTraining) {
  cp::GeneratorOptions opts = clean_opts();
  const auto train = cp::featurize(cp::make_corpus(20, opts, 9001));
  cp::DecisionTreeClassifier tree;
  tree.train(train);
  const cp::Evaluation ev = cp::evaluate(tree, train);
  EXPECT_DOUBLE_EQ(ev.accuracy, 1.0);
  EXPECT_GT(tree.node_count(), 0);
  EXPECT_LE(tree.depth(), 10);
}

TEST(DecisionTree, HeldOutAccuracyMatchesPaperBand) {
  cp::GeneratorOptions opts = clean_opts();
  opts.background = 0.05;
  opts.jitter = 0.25;
  cp::DecisionTreeClassifier tree;
  tree.train(cp::featurize(cp::make_corpus(40, opts, 9002)));
  const cp::Evaluation ev =
      cp::evaluate(tree, cp::featurize(cp::make_corpus(25, opts, 9003)));
  EXPECT_GE(ev.accuracy, 0.95) << ev.to_string();
}

TEST(DecisionTree, SingleClassCollapsesToOneLeaf) {
  cs::SplitMix64 rng(9004);
  std::vector<cp::Example> train;
  for (int i = 0; i < 10; ++i) {
    train.push_back(cp::Example{
        cp::extract_features(
            cp::generate(cp::PatternClass::kPipeline, clean_opts(), rng)),
        cp::PatternClass::kPipeline});
  }
  cp::DecisionTreeClassifier tree;
  tree.train(train);
  EXPECT_EQ(tree.node_count(), 1);
  EXPECT_EQ(tree.predict(train[0].features), cp::PatternClass::kPipeline);
}

TEST(DecisionTree, DepthOptionBoundsGrowth) {
  cp::GeneratorOptions opts = clean_opts();
  opts.background = 0.2;
  cp::DecisionTreeClassifier stump({.max_depth = 1, .min_leaf = 2});
  stump.train(cp::featurize(cp::make_corpus(20, opts, 9005)));
  EXPECT_LE(stump.depth(), 1);
  EXPECT_LE(stump.node_count(), 3);
}

TEST(DecisionTree, EmptyTrainingIsSafe) {
  cp::DecisionTreeClassifier tree;
  tree.train({});
  EXPECT_EQ(tree.node_count(), 0);
  (void)tree.predict(cp::FeatureVector{});  // falls back to a default class
}

TEST(DecisionTree, RulesRenderHumanReadably) {
  cp::GeneratorOptions opts = clean_opts();
  cp::DecisionTreeClassifier tree;
  tree.train(cp::featurize(cp::make_corpus(15, opts, 9006)));
  const std::string rules = tree.to_string();
  EXPECT_NE(rules.find("if "), std::string::npos);
  EXPECT_NE(rules.find("-> "), std::string::npos);
}
