// Flight-recorder unit suite: seal triggers, the bounded overwrite-and-count
// ring, sparse-delta fidelity, epoch-file IO under hostile input, the
// run-to-run diff math behind `commscope diff`, and the report renderers.
//
// The live-recorder half is compiled out with the recorder itself under
// -DCOMMSCOPE_TELEMETRY=OFF; the data model, IO, diff and report halves are
// unconditional — exactly the split the notelemetry CI preset checks.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "core/comm_diff.hpp"
#include "core/comm_matrix.hpp"
#include "core/epoch_io.hpp"
#include "core/flight_recorder.hpp"
#include "core/timeline_report.hpp"
#include "instrument/loop_registry.hpp"

namespace cc = commscope::core;
namespace ci = commscope::instrument;

namespace {

cc::FlightRecorderOptions opts(int threads, std::uint64_t every,
                               std::uint32_t ring = 0) {
  cc::FlightRecorderOptions o;
  o.threads = threads;
  o.every_accesses = every;
  o.capacity = ring;
  return o;
}

/// Hand-built timeline for the IO/diff/report halves (no live recorder
/// needed, so these tests run under the notelemetry build too).
cc::EpochTimeline make_timeline() {
  cc::EpochTimeline t;
  t.threads = 4;
  t.sealed = 3;
  t.dropped = 1;
  t.loop_labels.emplace_back(7, "lu:k-loop");
  for (std::uint64_t i = 1; i <= 2; ++i) {
    cc::EpochSample e;
    e.index = i;
    e.first_access = i * 100;
    e.last_access = i * 100 + 100;
    e.dependencies = 5 * i;
    e.bytes = 64 * i;
    e.reason = i == 2 ? cc::EpochSeal::kFinalize : cc::EpochSeal::kAccesses;
    e.cells.push_back(cc::EpochCell{0, 1, 48 * i});
    e.cells.push_back(cc::EpochCell{2, 3, 16 * i});
    e.loops.push_back(cc::EpochLoopShare{ci::kNoLoop, 16 * i});
    e.loops.push_back(cc::EpochLoopShare{7, 48 * i});
    t.epochs.push_back(e);
  }
  return t;
}

}  // namespace

// --- data model (unconditional) --------------------------------------------

TEST(EpochModel, DenseReconstructionMatchesCells) {
  const cc::EpochTimeline t = make_timeline();
  const cc::Matrix m = t.epochs[0].dense(4);
  EXPECT_EQ(m.at(0, 1), 48u);
  EXPECT_EQ(m.at(2, 3), 16u);
  EXPECT_EQ(m.total(), 64u);
  const cc::Matrix sum = t.total();
  EXPECT_EQ(sum.at(0, 1), 48u + 96u);
  EXPECT_EQ(sum.total(), 64u + 128u);
}

TEST(EpochModel, LabelResolution) {
  const cc::EpochTimeline t = make_timeline();
  EXPECT_EQ(t.label_of(7), "lu:k-loop");
  EXPECT_EQ(t.label_of(ci::kNoLoop), "<root>");
  EXPECT_EQ(t.label_of(99), "loop#99");
}

TEST(EpochModel, SealReasonRoundTrip) {
  for (const cc::EpochSeal r :
       {cc::EpochSeal::kAccesses, cc::EpochSeal::kBatches, cc::EpochSeal::kTimer,
        cc::EpochSeal::kCheckpoint, cc::EpochSeal::kFinalize,
        cc::EpochSeal::kReplay}) {
    EXPECT_EQ(cc::epoch_seal_from_string(cc::to_string(r)), r);
  }
  EXPECT_THROW((void)cc::epoch_seal_from_string("bogus"), std::runtime_error);
}

// --- epoch IO (unconditional) ----------------------------------------------

TEST(EpochIo, RoundTripPreservesEverything) {
  const cc::EpochTimeline want = make_timeline();
  std::stringstream ss;
  cc::write_epochs(ss, want);
  const cc::EpochTimeline got = cc::read_epochs(ss);
  EXPECT_EQ(got.threads, want.threads);
  EXPECT_EQ(got.sealed, want.sealed);
  EXPECT_EQ(got.dropped, want.dropped);
  EXPECT_EQ(got.loop_labels, want.loop_labels);
  ASSERT_EQ(got.epochs.size(), want.epochs.size());
  for (std::size_t i = 0; i < want.epochs.size(); ++i) {
    EXPECT_EQ(got.epochs[i], want.epochs[i]) << "epoch " << i;
  }
}

TEST(EpochIo, RejectsBadMagicTruncationAndCorruption) {
  std::stringstream ss;
  cc::write_epochs(ss, make_timeline());
  const std::string good = ss.str();

  {
    std::istringstream bad("commscope-matrix 1\n");
    EXPECT_THROW((void)cc::read_epochs(bad), std::runtime_error);
  }
  {
    std::istringstream truncated(good.substr(0, good.size() / 2));
    EXPECT_THROW((void)cc::read_epochs(truncated), std::runtime_error);
  }
  {
    // Flip a digit inside a payload line: the CRC trailer must catch it.
    std::string corrupt = good;
    const std::size_t pos = corrupt.find("bytes 64");
    ASSERT_NE(pos, std::string::npos);
    corrupt[pos + 6] = '9';
    std::istringstream in(corrupt);
    EXPECT_THROW((void)cc::read_epochs(in), std::runtime_error);
  }
  {
    // A hostile epoch count must be rejected before allocation.
    std::istringstream huge(
        "commscope-epochs 1\nthreads 4\nsealed 999999999999 dropped 0\n"
        "loops 0\n");
    EXPECT_THROW((void)cc::read_epochs(huge), std::runtime_error);
  }
}

// --- diff math (unconditional) ---------------------------------------------

TEST(CommDiff, SelfDiffIsExactlyZeroAndClean) {
  const cc::EpochTimeline t = make_timeline();
  const cc::TimelineDiff d = cc::diff_timelines(t, t);
  EXPECT_EQ(d.total.l1, 0u);
  EXPECT_EQ(d.total.max_cell, 0u);
  EXPECT_DOUBLE_EQ(d.total.norm_l1, 0.0);
  EXPECT_DOUBLE_EQ(d.worst_epoch_l1, 0.0);
  EXPECT_FALSE(d.regressed);
  EXPECT_NE(d.verdict.find("clean"), std::string::npos) << d.verdict;
}

TEST(CommDiff, MatrixDistanceKnownValues) {
  cc::Matrix a(2), b(2);
  a.at(0, 1) = 100;
  b.at(0, 1) = 60;
  b.at(1, 0) = 40;
  const cc::MatrixDistance d = cc::matrix_distance(a, b);
  EXPECT_EQ(d.l1, 80u);        // |100-60| + |0-40|
  EXPECT_EQ(d.max_cell, 40u);
  EXPECT_DOUBLE_EQ(d.norm_l1, 0.8);  // 80 / max(100, 100)
  EXPECT_DOUBLE_EQ(d.norm_max_cell, 0.4);
}

TEST(CommDiff, PadsMismatchedDimensions) {
  cc::Matrix a(2), b(4);
  a.at(0, 1) = 10;
  b.at(0, 1) = 10;
  b.at(3, 0) = 5;
  const cc::MatrixDistance d = cc::matrix_distance(a, b);
  EXPECT_EQ(d.l1, 5u);
  EXPECT_EQ(d.max_cell, 5u);
}

TEST(CommDiff, RegressionCrossesThresholdAndNamesIt) {
  cc::EpochTimeline a = make_timeline();
  cc::EpochTimeline b = make_timeline();
  b.epochs[1].cells[0].bytes *= 10;  // move real volume, not jitter
  const cc::TimelineDiff d = cc::diff_timelines(a, b);
  EXPECT_TRUE(d.regressed);
  EXPECT_NE(d.verdict.find("REGRESSED"), std::string::npos) << d.verdict;
}

TEST(CommDiff, LoopDriftIsKeyedByLabel) {
  cc::EpochTimeline a = make_timeline();
  cc::EpochTimeline b = make_timeline();
  // Same loop volume under a different id: label-keyed matching must see no
  // drift (registration order is not part of the contract).
  b.loop_labels.clear();
  b.loop_labels.emplace_back(12, "lu:k-loop");
  for (cc::EpochSample& e : b.epochs) {
    for (cc::EpochLoopShare& s : e.loops) {
      if (s.loop == 7) s.loop = 12;
    }
  }
  const cc::TimelineDiff d = cc::diff_timelines(a, b);
  for (const cc::LoopDrift& l : d.loops) {
    EXPECT_DOUBLE_EQ(l.drift, 0.0) << l.label;
  }
}

TEST(BenchDiff, ParsesOwnJsonAndFlagsRegression) {
  const std::string base =
      "{\"bench\": \"ingest_throughput\", \"sweep\": [\n"
      "  {\"batch\": 0, \"events_per_sec\": 1000000, \"speedup\": 1},\n"
      "  {\"batch\": 64, \"events_per_sec\": 3000000, \"speedup\": 3}\n]}";
  const std::vector<cc::BenchPoint> pts = cc::parse_bench_json(base);
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_EQ(pts[1].batch, 64u);
  EXPECT_DOUBLE_EQ(pts[1].events_per_sec, 3000000.0);

  EXPECT_FALSE(cc::diff_bench(base, base).regressed);  // self-diff clean

  const std::string slow =
      "{\"bench\": \"ingest_throughput\", \"sweep\": [\n"
      "  {\"batch\": 0, \"events_per_sec\": 1000000, \"speedup\": 1},\n"
      "  {\"batch\": 64, \"events_per_sec\": 2000000, \"speedup\": 2}\n]}";
  const cc::BenchDiff d = cc::diff_bench(base, slow, 0.25);
  EXPECT_TRUE(d.regressed);  // -33% at batch 64 crosses the 25% gate
  ASSERT_EQ(d.points.size(), 2u);
  EXPECT_FALSE(d.points[0].regressed);
  EXPECT_TRUE(d.points[1].regressed);

  EXPECT_THROW((void)cc::parse_bench_json("{\"not\": \"a bench\"}"),
               std::runtime_error);
}

TEST(BenchDiff, FloorGatesAbsoluteBatchSpeedup) {
  const std::string base =
      "{\"bench\": \"ingest_throughput\", \"sweep\": [\n"
      "  {\"batch\": 0, \"events_per_sec\": 1000000, \"speedup\": 1},\n"
      "  {\"batch\": 64, \"events_per_sec\": 1400000, \"speedup\": 1.4}\n]}";

  // Self-diff passes a 1.0 floor: the batched point genuinely wins.
  cc::BenchFloor floor;
  floor.min_speedup = 1.0;
  EXPECT_FALSE(cc::diff_bench(base, base, 0.25, floor).regressed);

  // A fresh sweep whose throughput matches baseline point-for-point (so the
  // relative gate is silent) but whose batch-64 point no longer beats the
  // inline path must still fail: the floor is an absolute claim.
  const std::string batching_lost =
      "{\"bench\": \"ingest_throughput\", \"sweep\": [\n"
      "  {\"batch\": 0, \"events_per_sec\": 1000000, \"speedup\": 1},\n"
      "  {\"batch\": 64, \"events_per_sec\": 1400000, \"speedup\": 0.93}\n]}";
  const cc::BenchDiff lost = cc::diff_bench(base, batching_lost, 0.25, floor);
  EXPECT_TRUE(lost.regressed);
  EXPECT_NE(lost.verdict.find("FLOOR"), std::string::npos) << lost.verdict;

  // A sweep that dropped the gated batch size entirely cannot pass the gate
  // by omission.
  const std::string no_point =
      "{\"bench\": \"ingest_throughput\", \"sweep\": [\n"
      "  {\"batch\": 0, \"events_per_sec\": 1000000, \"speedup\": 1},\n"
      "  {\"batch\": 128, \"events_per_sec\": 1500000, \"speedup\": 1.5}\n]}";
  const cc::BenchDiff missing = cc::diff_bench(base, no_point, 0.25, floor);
  EXPECT_TRUE(missing.regressed);
  EXPECT_NE(missing.verdict.find("FLOOR"), std::string::npos)
      << missing.verdict;

  // min_speedup = 0 disables the floor (the default): the same sweeps are
  // judged by the relative gate alone.
  EXPECT_FALSE(cc::diff_bench(base, batching_lost, 0.25).regressed);
}

// --- report renderers (unconditional) --------------------------------------

TEST(TimelineReport, RenderersEmitTheirMarkers) {
  cc::ReportModel model;
  model.title = "unit";
  model.timeline = make_timeline();

  std::ostringstream text;
  cc::render_text(text, model);
  EXPECT_NE(text.str().find("== unit =="), std::string::npos);
  EXPECT_NE(text.str().find("epoch"), std::string::npos);

  std::ostringstream json;
  cc::render_json(json, model);
  EXPECT_EQ(json.str().rfind("{\"title\":\"unit\"", 0), 0u);
  EXPECT_NE(json.str().find("\"epochs\":["), std::string::npos);

  std::ostringstream html;
  cc::render_html(html, model);
  EXPECT_EQ(html.str().rfind("<!doctype html>", 0), 0u);
  EXPECT_NE(html.str().find("</html>"), std::string::npos);
  // The embedded JSON must not be able to close its own <script> tag.
  EXPECT_EQ(html.str().find("</script>\""), std::string::npos);
}

TEST(TimelineReport, EmptyTimelineRendersHint) {
  cc::ReportModel model;
  model.title = "empty";
  model.timeline.threads = 2;
  std::ostringstream text;
  cc::render_text(text, model);
  EXPECT_NE(text.str().find("no epochs recorded"), std::string::npos);
}

// --- live recorder (compiled out under -DCOMMSCOPE_TELEMETRY=OFF) ----------

#if !defined(COMMSCOPE_TELEMETRY_DISABLED)

TEST(FlightRecorder, DisabledRecorderDoesNothing) {
  cc::FlightRecorder r(opts(4, 0));
  EXPECT_FALSE(r.enabled());
  for (int i = 0; i < 100; ++i) r.count_access();
  r.add(0, 1, 8, ci::kNoLoop);
  r.flush(cc::EpochSeal::kFinalize);
  EXPECT_EQ(r.epochs_sealed(), 0u);
  EXPECT_TRUE(r.timeline().epochs.empty());
}

TEST(FlightRecorder, AccessTriggerSealsEveryN) {
  cc::FlightRecorder r(opts(4, 10));
  ASSERT_TRUE(r.enabled());
  for (int i = 0; i < 35; ++i) {
    r.add(0, 1, 8, ci::kNoLoop);
    r.count_access();
  }
  EXPECT_EQ(r.epochs_sealed(), 3u);
  r.flush(cc::EpochSeal::kFinalize);  // the 5-access remainder
  const cc::EpochTimeline t = r.timeline();
  ASSERT_EQ(t.epochs.size(), 4u);
  EXPECT_EQ(t.epochs[0].last_access - t.epochs[0].first_access, 10u);
  EXPECT_EQ(t.epochs[3].last_access, 35u);
  EXPECT_EQ(t.epochs[3].reason, cc::EpochSeal::kFinalize);
  EXPECT_EQ(t.total().at(0, 1), 35u * 8u);
}

TEST(FlightRecorder, BatchTriggerSeals) {
  cc::FlightRecorderOptions o;
  o.threads = 2;
  o.every_batches = 2;
  cc::FlightRecorder r(o);
  ASSERT_TRUE(r.enabled());
  r.add(0, 1, 4, ci::kNoLoop);
  for (int i = 0; i < 5; ++i) r.count_batch();
  EXPECT_EQ(r.epochs_sealed(), 2u);
  const cc::EpochTimeline t = r.timeline();
  ASSERT_FALSE(t.epochs.empty());
  EXPECT_EQ(t.epochs[0].reason, cc::EpochSeal::kBatches);
}

TEST(FlightRecorder, RingOverwritesOldestAndCounts) {
  cc::FlightRecorder r(opts(2, 1, /*ring=*/4));
  for (int i = 0; i < 10; ++i) {
    r.add(0, 1, 8, ci::kNoLoop);
    r.count_access();
  }
  const cc::EpochTimeline t = r.timeline();
  EXPECT_EQ(t.sealed, 10u);
  EXPECT_EQ(t.dropped, 6u);
  ASSERT_EQ(t.epochs.size(), 4u);
  // sealed == dropped + surviving: the honesty contract.
  EXPECT_EQ(t.sealed, t.dropped + t.epochs.size());
  // Newest history survives, oldest first.
  EXPECT_EQ(t.epochs[0].index, 6u);
  EXPECT_EQ(t.epochs[3].index, 9u);
}

TEST(FlightRecorder, EmptyFlushIsSkipped) {
  // every_accesses = 16 keeps the coalescing stride at 1, so a single
  // count_access() publishes immediately and makes the window non-empty.
  cc::FlightRecorder r(opts(2, 16));
  r.flush(cc::EpochSeal::kCheckpoint);
  r.flush(cc::EpochSeal::kCheckpoint);
  EXPECT_EQ(r.epochs_sealed(), 0u);  // no empty epoch per checkpoint
  r.count_access();
  r.flush(cc::EpochSeal::kCheckpoint);
  EXPECT_EQ(r.epochs_sealed(), 1u);
}

TEST(FlightRecorder, CoalescedCountsFoldIntoNextWindow) {
  // Coarse granularity -> stride > 1: events below the stride stay pending
  // in the thread-local slot and are invisible to flush (documented
  // contract — matrix deltas flow through add(), never through the
  // counter), then surface once the stride is crossed.
  cc::FlightRecorder r(opts(2, 1000));  // stride = 1000 / 16 = 62
  r.count_access();
  r.flush(cc::EpochSeal::kCheckpoint);
  EXPECT_EQ(r.epochs_sealed(), 0u);  // still locally pending
  for (int i = 0; i < 64; ++i) r.count_access();  // crosses the stride
  r.flush(cc::EpochSeal::kCheckpoint);
  EXPECT_EQ(r.epochs_sealed(), 1u);
  const cc::EpochTimeline t = r.timeline();
  ASSERT_EQ(t.epochs.size(), 1u);
  EXPECT_EQ(t.epochs[0].last_access, 62u);  // one published batch
}

TEST(FlightRecorder, ReplayModeStampsReplaySeals) {
  cc::FlightRecorderOptions o = opts(2, 2);
  o.replay = true;
  cc::FlightRecorder r(o);
  for (int i = 0; i < 4; ++i) {
    r.add(0, 1, 8, ci::kNoLoop);
    r.count_access();
  }
  const cc::EpochTimeline t = r.timeline();
  ASSERT_EQ(t.epochs.size(), 2u);
  EXPECT_EQ(t.epochs[0].reason, cc::EpochSeal::kReplay);
}

TEST(FlightRecorder, SparseDeltasSumToAccumulatedMatrix) {
  cc::FlightRecorder r(opts(4, 7));
  cc::Matrix want(4);
  std::uint64_t x = 88172645463325252ull;  // xorshift64
  for (int i = 0; i < 200; ++i) {
    x ^= x << 13; x ^= x >> 7; x ^= x << 17;
    const int p = static_cast<int>(x % 4);
    const int c = static_cast<int>((x >> 8) % 4);
    const std::uint64_t bytes = 1 + (x >> 16) % 64;
    r.add(p, c, bytes, ci::kNoLoop);
    want.at(p, c) += bytes;
    r.count_access();
  }
  r.flush(cc::EpochSeal::kFinalize);
  const cc::EpochTimeline t = r.timeline();
  EXPECT_EQ(t.dropped, 0u);
  EXPECT_TRUE(t.total() == want) << "sparse deltas diverged from dense sum";
}

TEST(FlightRecorder, MemoryTrackerChargedAndReleased) {
  commscope::support::MemoryTracker tracker;
  {
    cc::FlightRecorder r(opts(8, 100), &tracker);
    EXPECT_GT(tracker.current(), 0u);
  }
  EXPECT_EQ(tracker.current(), 0u);
}

#endif  // !COMMSCOPE_TELEMETRY_DISABLED
