// SplitMix64 determinism and range tests.
#include <gtest/gtest.h>

#include "support/rng.hpp"

namespace cs = commscope::support;

TEST(SplitMix64, DeterministicForSeed) {
  cs::SplitMix64 a(123);
  cs::SplitMix64 b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  cs::SplitMix64 a(1);
  cs::SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(SplitMix64, KnownReferenceValue) {
  // SplitMix64(seed=0).next() is the published reference sequence head.
  cs::SplitMix64 r(0);
  EXPECT_EQ(r.next(), 0xe220a8397b1dcdafULL);
}

TEST(SplitMix64, DoubleInUnitInterval) {
  cs::SplitMix64 r(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(SplitMix64, NextBelowRespectsBound) {
  cs::SplitMix64 r(9);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.next_below(17), 17u);
}

TEST(SplitMix64, UniformRange) {
  cs::SplitMix64 r(11);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(SplitMix64, RoughlyUniformBuckets) {
  cs::SplitMix64 r(13);
  int buckets[10] = {};
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    ++buckets[static_cast<int>(r.next_double() * 10.0)];
  }
  for (int b : buckets) {
    EXPECT_GT(b, kDraws / 10 * 0.9);
    EXPECT_LT(b, kDraws / 10 * 1.1);
  }
}
