// DVFS-advisor tests: boundness estimation, level selection under a
// slowdown budget, energy accounting, end-to-end from a real phase timeline.
#include <gtest/gtest.h>

#include <memory>

#include "core/profiler.hpp"
#include "power/dvfs.hpp"

namespace cc = commscope::core;
namespace ci = commscope::instrument;
namespace cpw = commscope::power;

namespace {

/// Builds a synthetic timeline: `comm_windows` fully-communication-bound
/// windows (few accesses per byte) followed by `compute_windows` nearly
/// communication-free windows (many accesses per byte), with orthogonal
/// patterns so they segment into two phases.
void make_timeline(int comm_windows, int compute_windows,
                   std::vector<cc::Matrix>& windows,
                   std::vector<std::uint64_t>& accesses) {
  for (int w = 0; w < comm_windows; ++w) {
    cc::Matrix m(4);
    for (int p = 0; p < 4; ++p) m.at(p, (p + 1) % 4) = 4096;  // ring
    windows.push_back(m);
    accesses.push_back(4096);  // ~4 bytes per access: heavily bound
  }
  for (int w = 0; w < compute_windows; ++w) {
    cc::Matrix m(4);
    for (int p = 0; p < 4; ++p) m.at(p, (p + 2) % 4) = 4096;  // offset-2 ring
    windows.push_back(m);
    accesses.push_back(4'000'000);  // ~0.004 B/access: compute-bound
  }
}

}  // namespace

TEST(DvfsPlan, CommPhasesDownclockComputePhasesDoNot) {
  std::vector<cc::Matrix> windows;
  std::vector<std::uint64_t> accesses;
  make_timeline(3, 3, windows, accesses);
  const cpw::DvfsPlan plan = cpw::plan_dvfs(windows, accesses);
  ASSERT_EQ(plan.phases.size(), 2u);
  const cpw::PhasePlan& comm = plan.phases[0];
  const cpw::PhasePlan& compute = plan.phases[1];
  EXPECT_GT(comm.boundness, 0.9);
  EXPECT_LT(compute.boundness, 0.05);
  // Communication phase drops to the lowest level; compute stays at the top.
  EXPECT_LT(comm.chosen.ghz, compute.chosen.ghz);
  EXPECT_DOUBLE_EQ(compute.chosen.ghz, 2.7);
  EXPECT_DOUBLE_EQ(comm.chosen.ghz, 1.2);
}

TEST(DvfsPlan, SavingPositiveAndSlowdownWithinBudget) {
  std::vector<cc::Matrix> windows;
  std::vector<std::uint64_t> accesses;
  make_timeline(4, 2, windows, accesses);
  cpw::DvfsOptions opts;
  opts.max_slowdown = 1.10;
  const cpw::DvfsPlan plan = cpw::plan_dvfs(windows, accesses, opts);
  EXPECT_GT(plan.saving_fraction, 0.0);
  EXPECT_LE(plan.overall_slowdown, opts.max_slowdown + 1e-9);
  for (const cpw::PhasePlan& pp : plan.phases) {
    EXPECT_LE(pp.est_slowdown, opts.max_slowdown + 1e-9);
  }
  EXPECT_LT(plan.planned_energy, plan.baseline_energy);
}

TEST(DvfsPlan, FullyCommBoundTimelineApproachesPowerRatioSaving) {
  // All windows fully bound -> the advisor can run everything at the lowest
  // level with no slowdown; the saving equals 1 - watts_low/watts_high
  // (~52% with the default table), comfortably covering the paper's quoted
  // 30% for communication phases.
  std::vector<cc::Matrix> windows;
  std::vector<std::uint64_t> accesses;
  make_timeline(5, 0, windows, accesses);
  const cpw::DvfsPlan plan = cpw::plan_dvfs(windows, accesses);
  EXPECT_NEAR(plan.saving_fraction, 1.0 - 62.0 / 130.0, 1e-9);
  EXPECT_NEAR(plan.overall_slowdown, 1.0, 1e-9);
  EXPECT_GE(plan.saving_fraction, 0.30);
}

TEST(DvfsPlan, TightBudgetKeepsComputePhasesFast) {
  std::vector<cc::Matrix> windows;
  std::vector<std::uint64_t> accesses;
  make_timeline(0, 3, windows, accesses);
  cpw::DvfsOptions opts;
  opts.max_slowdown = 1.01;  // compute phases cannot afford any downclock
  const cpw::DvfsPlan plan = cpw::plan_dvfs(windows, accesses, opts);
  EXPECT_NEAR(plan.saving_fraction, 0.0, 1e-9);
  for (const cpw::PhasePlan& pp : plan.phases) {
    EXPECT_DOUBLE_EQ(pp.chosen.ghz, 2.7);
  }
}

TEST(DvfsPlan, RejectsMalformedInput) {
  std::vector<cc::Matrix> windows(2, cc::Matrix(4));
  std::vector<std::uint64_t> accesses(1, 10);
  EXPECT_THROW(cpw::plan_dvfs(windows, accesses), std::invalid_argument);
  accesses.push_back(10);
  cpw::DvfsOptions no_levels;
  no_levels.levels.clear();
  EXPECT_THROW(cpw::plan_dvfs(windows, accesses, no_levels),
               std::invalid_argument);
}

TEST(DvfsPlan, EndToEndFromProfilerTimeline) {
  // Real pipeline: profile a two-phase synthetic program, feed its timeline
  // and access counts straight into the advisor.
  cc::ProfilerOptions o;
  o.max_threads = 4;
  o.backend = cc::Backend::kExact;
  o.phase_window_bytes = 2048;
  auto prof = std::make_unique<cc::Profiler>(o);
  for (int t = 0; t < 4; ++t) prof->on_thread_begin(t);
  // Communication-heavy stretch: write/read handoffs, few extra accesses.
  for (int i = 0; i < 1024; ++i) {
    const auto addr = static_cast<std::uintptr_t>(0x9000 + i * 8);
    prof->on_access(0, addr, 8, ci::AccessKind::kWrite);
    prof->on_access(1, addr, 8, ci::AccessKind::kRead);
  }
  // Compute-heavy stretch: mostly private traffic, a thin comm trickle with
  // a different pattern (2->3).
  for (int i = 0; i < 1024; ++i) {
    const auto priv = static_cast<std::uintptr_t>(0x80000 + i * 8);
    for (int r = 0; r < 40; ++r) {
      prof->on_access(2, priv, 8, ci::AccessKind::kRead);
    }
    // Consumer 0 gives this phase offset 2 (circular), distinct from the
    // offset-1 handoffs of the first phase so the segmentation splits them.
    const auto addr = static_cast<std::uintptr_t>(0x20000 + i * 8);
    prof->on_access(2, addr, 8, ci::AccessKind::kWrite);
    prof->on_access(0, addr, 8, ci::AccessKind::kRead);
  }
  prof->finalize();

  const auto windows = prof->phase_timeline();
  const auto accesses = prof->phase_window_accesses();
  ASSERT_EQ(windows.size(), accesses.size());
  ASSERT_GE(windows.size(), 2u);
  const cpw::DvfsPlan plan = cpw::plan_dvfs(windows, accesses);
  ASSERT_GE(plan.phases.size(), 2u);
  // The first phase (dense handoffs) must be judged more communication-bound
  // than the last (compute-dominated) one.
  EXPECT_GT(plan.phases.front().boundness, plan.phases.back().boundness);
  EXPECT_GT(plan.saving_fraction, 0.0);
  EXPECT_FALSE(plan.to_string().empty());
}
