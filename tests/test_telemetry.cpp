// Telemetry layer tests: registry aggregation under thread churn, counter
// saturation, histogram bucket boundaries, metrics text round-trip + merge,
// trace JSON round-trip (validated with a minimal in-test JSON parser), and
// the disabled path's zero-allocation guarantee.
//
// The file compiles in both configurations: with -DCOMMSCOPE_TELEMETRY=OFF
// the value assertions flip to "everything inlines to zero".
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cstddef>
#include <cstdlib>
#include <new>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace ctl = commscope::telemetry;

// --- allocation counting -----------------------------------------------------
//
// Global operator new override, counting per-thread. gtest and the tests
// themselves allocate freely; assertions sample the counter immediately
// around the calls under test.
namespace {
thread_local std::uint64_t tl_allocs = 0;
}  // namespace

void* operator new(std::size_t size) {
  ++tl_allocs;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  ++tl_allocs;
  return std::malloc(size);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace {

#if !defined(COMMSCOPE_TELEMETRY_DISABLED)

TEST(Counter, AggregatesExactlyAcrossThreadChurn) {
  ctl::Counter& c = ctl::counter("test.churn");
  const std::uint64_t base = c.value();
  // Waves of short-lived threads: slots/shard picks are recycled across
  // waves, which is exactly the double-count / lost-count hazard the sharded
  // design must survive.
  constexpr int kWaves = 8;
  constexpr int kThreadsPerWave = 24;  // > Counter::kShards
  constexpr int kAddsPerThread = 1000;
  for (int wave = 0; wave < kWaves; ++wave) {
    std::vector<std::thread> pool;
    pool.reserve(kThreadsPerWave);
    for (int t = 0; t < kThreadsPerWave; ++t) {
      pool.emplace_back([&c] {
        for (int i = 0; i < kAddsPerThread; ++i) c.add(1);
      });
    }
    for (std::thread& th : pool) th.join();
  }
  EXPECT_EQ(c.value() - base,
            std::uint64_t{kWaves} * kThreadsPerWave * kAddsPerThread);
  EXPECT_FALSE(c.saturated());
}

TEST(Counter, SaturatesWithProvenanceInsteadOfWrapping) {
  ctl::Counter& c = ctl::counter("test.saturate");
  c.add(ctl::kSaturation - 10);
  EXPECT_FALSE(c.saturated());
  c.add(100);  // crosses the clamp
  EXPECT_EQ(c.value(), ctl::kSaturation);
  EXPECT_TRUE(c.saturated());
  c.add(1);  // further adds stay clamped
  EXPECT_EQ(c.value(), ctl::kSaturation);
}

TEST(Counter, SameNameSameInstanceDistinctKindsDistinct) {
  EXPECT_EQ(&ctl::counter("test.identity"), &ctl::counter("test.identity"));
  EXPECT_NE(static_cast<void*>(&ctl::counter("test.identity")),
            static_cast<void*>(&ctl::gauge("test.identity")));
}

TEST(Gauge, SetMaxIsMonotonic) {
  ctl::Gauge& g = ctl::gauge("test.highwater");
  g.set(0);
  g.set_max(10);
  g.set_max(7);
  EXPECT_EQ(g.value(), 10u);
  g.set_max(11);
  EXPECT_EQ(g.value(), 11u);
  g.set(3);  // plain set still overwrites
  EXPECT_EQ(g.value(), 3u);
}

TEST(Histogram, BucketBoundariesAreLog2) {
  // Bucket 0 = exact zeros; bucket b >= 1 = [2^(b-1), 2^b).
  EXPECT_EQ(ctl::histogram_bucket_of(0), 0);
  EXPECT_EQ(ctl::histogram_bucket_of(1), 1);
  EXPECT_EQ(ctl::histogram_bucket_of(2), 2);
  EXPECT_EQ(ctl::histogram_bucket_of(3), 2);
  EXPECT_EQ(ctl::histogram_bucket_of(4), 3);
  EXPECT_EQ(ctl::histogram_bucket_of(7), 3);
  EXPECT_EQ(ctl::histogram_bucket_of(8), 4);
  EXPECT_EQ(ctl::histogram_bucket_of(~0ULL), 64);
  for (int b = 1; b < ctl::kHistogramBuckets; ++b) {
    const std::uint64_t lo = ctl::histogram_bucket_floor(b);
    EXPECT_EQ(ctl::histogram_bucket_of(lo), b) << "floor of bucket " << b;
    EXPECT_EQ(ctl::histogram_bucket_of(lo - 1), b - 1 == 0 && lo == 1 ? 0
                                                                      : b - 1)
        << "below floor of bucket " << b;
  }

  ctl::Histogram& h = ctl::histogram("test.buckets");
  h.record(0);
  h.record(1);
  h.record(2);
  h.record(3);
  h.record(1024);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 0u + 1 + 2 + 3 + 1024);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 2u);
  EXPECT_EQ(h.bucket(11), 1u);  // 1024 = 2^10 -> [2^10, 2^11)
}

TEST(Metrics, TextFormatRoundTripsAndMerges) {
  std::vector<ctl::MetricSnapshot> ms;
  {
    ctl::MetricSnapshot c;
    c.name = "rt.counter";
    c.kind = ctl::MetricKind::kCounter;
    c.value = 42;
    c.saturated = true;
    ms.push_back(c);
    ctl::MetricSnapshot g;
    g.name = "rt.gauge";
    g.kind = ctl::MetricKind::kGauge;
    g.value = 7;
    ms.push_back(g);
    ctl::MetricSnapshot h;
    h.name = "rt.hist";
    h.kind = ctl::MetricKind::kHistogram;
    h.count = 3;
    h.sum = 712;
    h.buckets[7] = 1;
    h.buckets[8] = 2;
    ms.push_back(h);
  }
  std::stringstream ss;
  ctl::write_metrics(ss, ms);
  const std::vector<ctl::MetricSnapshot> back = ctl::read_metrics(ss);
  ASSERT_EQ(back.size(), 3u);
  EXPECT_EQ(back[0].name, "rt.counter");
  EXPECT_EQ(back[0].value, 42u);
  EXPECT_TRUE(back[0].saturated);
  EXPECT_EQ(back[1].kind, ctl::MetricKind::kGauge);
  EXPECT_EQ(back[1].value, 7u);
  EXPECT_EQ(back[2].count, 3u);
  EXPECT_EQ(back[2].sum, 712u);
  EXPECT_EQ(back[2].buckets[7], 1u);
  EXPECT_EQ(back[2].buckets[8], 2u);

  // Merge: counters/histograms sum, gauges take the max.
  std::vector<ctl::MetricSnapshot> into = ms;
  into[1].value = 3;  // lower gauge must lose to the incoming 7
  ctl::merge_metrics(into, back);
  EXPECT_EQ(into[0].value, 84u);
  EXPECT_EQ(into[1].value, 7u);
  EXPECT_EQ(into[2].count, 6u);
  EXPECT_EQ(into[2].buckets[8], 4u);

  std::stringstream bad("# commscope-metrics v1\ncounter oops notanumber\n");
  EXPECT_THROW((void)ctl::read_metrics(bad), std::invalid_argument);
}

// --- minimal JSON parser (validation only) ----------------------------------
//
// Enough JSON to structurally validate a Chrome trace: objects, arrays,
// strings with escapes, numbers, true/false/null. Parses or dies; the test
// then probes a few semantic fields by substring.
class JsonCursor {
 public:
  explicit JsonCursor(const std::string& s) : s_(s) {}
  bool parse() { return value() && (ws(), pos_ == s_.size()); }

 private:
  bool value() {
    ws();
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    ws();
    if (peek() == '}') { ++pos_; return true; }
    for (;;) {
      ws();
      if (!string()) return false;
      ws();
      if (peek() != ':') return false;
      ++pos_;
      if (!value()) return false;
      ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    ws();
    if (peek() == ']') { ++pos_; return true; }
    for (;;) {
      if (!value()) return false;
      ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= s_.size() || std::isxdigit(
                    static_cast<unsigned char>(s_[pos_])) == 0) {
              return false;
            }
          }
        } else if (std::string("\"\\/bfnrt").find(e) == std::string::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool literal(const char* word) {
    const std::size_t n = std::string(word).size();
    if (s_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }
  void ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\n' ||
                                s_[pos_] == '\t' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }
  [[nodiscard]] char peek() const {
    return pos_ < s_.size() ? s_[pos_] : '\0';
  }
  const std::string& s_;
  std::size_t pos_ = 0;
};

TEST(Trace, ChromeJsonRoundTripsThroughParser) {
  ctl::Tracer::enable();
  ctl::Tracer::begin("phase \"quoted\"", ctl::SpanCat::kRun, 2);
  ctl::Tracer::loop_begin(0, 7);
  ctl::Tracer::instant("degradation", ctl::SpanCat::kDegrade);
  ctl::Tracer::loop_end(0);
  ctl::Tracer::end(ctl::SpanCat::kRun, 2);
  {
    ctl::ScopedSpan span("checkpoint", ctl::SpanCat::kCheckpoint);
  }
  ctl::Tracer::disable();
  EXPECT_GE(ctl::Tracer::captured(), 6u);

  std::stringstream ss;
  ctl::Tracer::write_chrome_trace(
      ss, [](std::uint32_t id) { return "loop<" + std::to_string(id) + ">"; });
  const std::string json = ss.str();
  JsonCursor cursor(json);
  EXPECT_TRUE(cursor.parse()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("loop<7>"), std::string::npos) << "resolver not applied";
  EXPECT_NE(json.find("phase \\\"quoted\\\""), std::string::npos)
      << "name not escaped";
  EXPECT_NE(json.find("\"cat\":\"degrade\""), std::string::npos);

  // The text export carries the same events.
  std::stringstream txt;
  ctl::Tracer::write_text(txt);
  EXPECT_NE(txt.str().find("commscope-trace v1"), std::string::npos);
  EXPECT_NE(txt.str().find("degradation"), std::string::npos);
}

TEST(Trace, DisabledRecordPathAllocatesNothing) {
  ctl::Tracer::disable();
  ctl::Counter& c = ctl::counter("test.noalloc");  // registered up front
  ctl::Gauge& g = ctl::gauge("test.noalloc");
  ctl::Histogram& h = ctl::histogram("test.noalloc");
  const std::uint64_t before = tl_allocs;
  for (int i = 0; i < 1000; ++i) {
    ctl::Tracer::begin("x", ctl::SpanCat::kRun);
    ctl::Tracer::loop_begin(0, 1);
    ctl::Tracer::loop_end(0);
    ctl::Tracer::end(ctl::SpanCat::kRun);
    ctl::ScopedSpan span("y", ctl::SpanCat::kFlush);
    c.add(1);
    g.set_max(static_cast<std::uint64_t>(i));
    h.record(static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(tl_allocs, before) << "telemetry hot path allocated";
}

TEST(Trace, EnabledRecordPathAllocatesNothing) {
  ctl::Tracer::enable();
  const std::uint64_t before = tl_allocs;
  for (int i = 0; i < 1000; ++i) {
    ctl::Tracer::loop_begin(0, 1);
    ctl::Tracer::loop_end(0);
  }
  EXPECT_EQ(tl_allocs, before) << "enabled ring write allocated";
  ctl::Tracer::disable();
}

TEST(Trace, RingOverwriteIsCountedNotUnbounded) {
  ctl::Tracer::enable();
  // One thread, one ring: push far past the ring capacity.
  for (int i = 0; i < 10000; ++i) {
    ctl::Tracer::instant("spin", ctl::SpanCat::kRun);
  }
  ctl::Tracer::disable();
  EXPECT_LE(ctl::Tracer::captured(), 4096u);  // bounded by one ring (2048)
  EXPECT_GT(ctl::Tracer::dropped(), 0u);
}

// Last: floods the fixed-capacity registry. Registrations past the cap land
// on the shared overflow sink instead of failing, and the spill is counted.
// Any test registering new names after this one would hit the overflow
// entry, so this must stay at the end of the file.
TEST(Registry, OverflowSpillsToSharedSinkAndCounts) {
  ctl::Counter& full = ctl::counter("telemetry.registry_full");
  const std::uint64_t spills_before = full.value();
  std::vector<ctl::Counter*> made;
  for (int i = 0; i < 300; ++i) {
    const std::string name = "test.flood." + std::to_string(i);
    made.push_back(&ctl::counter(name.c_str()));
    made.back()->add(1);  // must be safe to use, wherever it landed
  }
  EXPECT_GT(full.value(), spills_before) << "no spill was counted";
  // Spilled names share one sink; the process did not crash and every
  // reference stayed usable — that is the whole contract.
}

#else  // COMMSCOPE_TELEMETRY_DISABLED

TEST(DisabledBuild, ApiInlinesToNoOps) {
  ctl::Counter& c = ctl::counter("off.counter");
  c.add(41);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_FALSE(c.saturated());
  ctl::gauge("off.gauge").set_max(9);
  EXPECT_EQ(ctl::gauge("off.gauge").value(), 0u);
  ctl::histogram("off.hist").record(3);
  EXPECT_EQ(ctl::histogram("off.hist").count(), 0u);
  EXPECT_TRUE(ctl::snapshot_all().empty());

  ctl::Tracer::enable();
  EXPECT_FALSE(ctl::Tracer::enabled());
  ctl::Tracer::loop_begin(0, 1);
  EXPECT_EQ(ctl::Tracer::captured(), 0u);
  std::stringstream ss;
  ctl::Tracer::write_chrome_trace(ss);
  EXPECT_NE(ss.str().find("\"traceEvents\":[]"), std::string::npos);
}

TEST(DisabledBuild, ApiAllocatesNothing) {
  ctl::Counter& c = ctl::counter("off.noalloc");
  const std::uint64_t before = tl_allocs;
  for (int i = 0; i < 1000; ++i) {
    c.add(1);
    ctl::Tracer::begin("x", ctl::SpanCat::kRun);
    ctl::ScopedSpan span("y", ctl::SpanCat::kFlush);
  }
  EXPECT_EQ(tl_allocs, before);
}

#endif  // COMMSCOPE_TELEMETRY_DISABLED

}  // namespace
