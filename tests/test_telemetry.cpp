// Telemetry layer tests: registry aggregation under thread churn, counter
// saturation, histogram bucket boundaries, metrics text round-trip + merge,
// trace JSON round-trip (validated with a minimal in-test JSON parser), and
// the disabled path's zero-allocation guarantee.
//
// The file compiles in both configurations: with -DCOMMSCOPE_TELEMETRY=OFF
// the value assertions flip to "everything inlines to zero".
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <charconv>
#include <cstddef>
#include <cstdlib>
#include <fstream>
#include <map>
#include <new>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"
#include "telemetry/trace_merge.hpp"

namespace ctl = commscope::telemetry;

// --- allocation counting -----------------------------------------------------
//
// Global operator new override, counting per-thread. gtest and the tests
// themselves allocate freely; assertions sample the counter immediately
// around the calls under test.
namespace {
thread_local std::uint64_t tl_allocs = 0;
}  // namespace

void* operator new(std::size_t size) {
  ++tl_allocs;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  ++tl_allocs;
  return std::malloc(size);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace {

#if !defined(COMMSCOPE_TELEMETRY_DISABLED)

TEST(Counter, AggregatesExactlyAcrossThreadChurn) {
  ctl::Counter& c = ctl::counter("test.churn");
  const std::uint64_t base = c.value();
  // Waves of short-lived threads: slots/shard picks are recycled across
  // waves, which is exactly the double-count / lost-count hazard the sharded
  // design must survive.
  constexpr int kWaves = 8;
  constexpr int kThreadsPerWave = 24;  // > Counter::kShards
  constexpr int kAddsPerThread = 1000;
  for (int wave = 0; wave < kWaves; ++wave) {
    std::vector<std::thread> pool;
    pool.reserve(kThreadsPerWave);
    for (int t = 0; t < kThreadsPerWave; ++t) {
      pool.emplace_back([&c] {
        for (int i = 0; i < kAddsPerThread; ++i) c.add(1);
      });
    }
    for (std::thread& th : pool) th.join();
  }
  EXPECT_EQ(c.value() - base,
            std::uint64_t{kWaves} * kThreadsPerWave * kAddsPerThread);
  EXPECT_FALSE(c.saturated());
}

TEST(Counter, SaturatesWithProvenanceInsteadOfWrapping) {
  ctl::Counter& c = ctl::counter("test.saturate");
  c.add(ctl::kSaturation - 10);
  EXPECT_FALSE(c.saturated());
  c.add(100);  // crosses the clamp
  EXPECT_EQ(c.value(), ctl::kSaturation);
  EXPECT_TRUE(c.saturated());
  c.add(1);  // further adds stay clamped
  EXPECT_EQ(c.value(), ctl::kSaturation);
}

TEST(Counter, SameNameSameInstanceDistinctKindsDistinct) {
  EXPECT_EQ(&ctl::counter("test.identity"), &ctl::counter("test.identity"));
  EXPECT_NE(static_cast<void*>(&ctl::counter("test.identity")),
            static_cast<void*>(&ctl::gauge("test.identity")));
}

TEST(Gauge, SetMaxIsMonotonic) {
  ctl::Gauge& g = ctl::gauge("test.highwater");
  g.set(0);
  g.set_max(10);
  g.set_max(7);
  EXPECT_EQ(g.value(), 10u);
  g.set_max(11);
  EXPECT_EQ(g.value(), 11u);
  g.set(3);  // plain set still overwrites
  EXPECT_EQ(g.value(), 3u);
}

TEST(Histogram, BucketBoundariesAreLog2) {
  // Bucket 0 = exact zeros; bucket b >= 1 = [2^(b-1), 2^b).
  EXPECT_EQ(ctl::histogram_bucket_of(0), 0);
  EXPECT_EQ(ctl::histogram_bucket_of(1), 1);
  EXPECT_EQ(ctl::histogram_bucket_of(2), 2);
  EXPECT_EQ(ctl::histogram_bucket_of(3), 2);
  EXPECT_EQ(ctl::histogram_bucket_of(4), 3);
  EXPECT_EQ(ctl::histogram_bucket_of(7), 3);
  EXPECT_EQ(ctl::histogram_bucket_of(8), 4);
  EXPECT_EQ(ctl::histogram_bucket_of(~0ULL), 64);
  for (int b = 1; b < ctl::kHistogramBuckets; ++b) {
    const std::uint64_t lo = ctl::histogram_bucket_floor(b);
    EXPECT_EQ(ctl::histogram_bucket_of(lo), b) << "floor of bucket " << b;
    EXPECT_EQ(ctl::histogram_bucket_of(lo - 1), b - 1 == 0 && lo == 1 ? 0
                                                                      : b - 1)
        << "below floor of bucket " << b;
  }

  ctl::Histogram& h = ctl::histogram("test.buckets");
  h.record(0);
  h.record(1);
  h.record(2);
  h.record(3);
  h.record(1024);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 0u + 1 + 2 + 3 + 1024);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 2u);
  EXPECT_EQ(h.bucket(11), 1u);  // 1024 = 2^10 -> [2^10, 2^11)
}

TEST(Metrics, TextFormatRoundTripsAndMerges) {
  std::vector<ctl::MetricSnapshot> ms;
  {
    ctl::MetricSnapshot c;
    c.name = "rt.counter";
    c.kind = ctl::MetricKind::kCounter;
    c.value = 42;
    c.saturated = true;
    ms.push_back(c);
    ctl::MetricSnapshot g;
    g.name = "rt.gauge";
    g.kind = ctl::MetricKind::kGauge;
    g.value = 7;
    ms.push_back(g);
    ctl::MetricSnapshot h;
    h.name = "rt.hist";
    h.kind = ctl::MetricKind::kHistogram;
    h.count = 3;
    h.sum = 712;
    h.buckets[7] = 1;
    h.buckets[8] = 2;
    ms.push_back(h);
  }
  std::stringstream ss;
  ctl::write_metrics(ss, ms);
  const std::vector<ctl::MetricSnapshot> back = ctl::read_metrics(ss);
  ASSERT_EQ(back.size(), 3u);
  EXPECT_EQ(back[0].name, "rt.counter");
  EXPECT_EQ(back[0].value, 42u);
  EXPECT_TRUE(back[0].saturated);
  EXPECT_EQ(back[1].kind, ctl::MetricKind::kGauge);
  EXPECT_EQ(back[1].value, 7u);
  EXPECT_EQ(back[2].count, 3u);
  EXPECT_EQ(back[2].sum, 712u);
  EXPECT_EQ(back[2].buckets[7], 1u);
  EXPECT_EQ(back[2].buckets[8], 2u);

  // Merge: counters/histograms sum, gauges take the max.
  std::vector<ctl::MetricSnapshot> into = ms;
  into[1].value = 3;  // lower gauge must lose to the incoming 7
  ctl::merge_metrics(into, back);
  EXPECT_EQ(into[0].value, 84u);
  EXPECT_EQ(into[1].value, 7u);
  EXPECT_EQ(into[2].count, 6u);
  EXPECT_EQ(into[2].buckets[8], 4u);

  std::stringstream bad("# commscope-metrics v1\ncounter oops notanumber\n");
  EXPECT_THROW((void)ctl::read_metrics(bad), std::invalid_argument);
}

TEST(Histogram, QuantileEstimatesAreExactAtBucketBoundaries) {
  ctl::MetricSnapshot m;
  m.kind = ctl::MetricKind::kHistogram;
  // Empty histogram: every quantile is 0.
  EXPECT_EQ(ctl::histogram_quantile(m, 0.5), 0u);

  // All-zero samples land in bucket 0 and stay 0 at every quantile.
  m.buckets[0] = 10;
  EXPECT_EQ(ctl::histogram_quantile(m, 0.99), 0u);
  m.buckets[0] = 0;

  // A single sample in bucket 7 ([64, 127]) sits at the bucket floor.
  m.buckets[7] = 1;
  EXPECT_EQ(ctl::histogram_quantile(m, 0.0), 64u);
  EXPECT_EQ(ctl::histogram_quantile(m, 1.0), 64u);

  // Two samples interpolate across the bucket span: rank 1 at the floor,
  // rank 2 at the inclusive ceiling.
  m.buckets[7] = 2;
  EXPECT_EQ(ctl::histogram_quantile(m, 0.5), 64u);
  EXPECT_EQ(ctl::histogram_quantile(m, 1.0), 127u);
  m.buckets[7] = 0;

  // Bimodal: 5 fast samples (bucket 1 = exactly 1) and 5 slow (bucket 10 =
  // [512, 1023]). The median stays fast; the tail quantiles see the slow
  // mode — the shape the stage histograms exist to expose.
  m.buckets[1] = 5;
  m.buckets[10] = 5;
  EXPECT_EQ(ctl::histogram_quantile(m, 0.50), 1u);
  EXPECT_EQ(ctl::histogram_quantile(m, 0.95), 1023u);
  EXPECT_EQ(ctl::histogram_quantile(m, 0.99), 1023u);
  // Out-of-range q clamps instead of misbehaving.
  EXPECT_EQ(ctl::histogram_quantile(m, -1.0), 1u);
  EXPECT_EQ(ctl::histogram_quantile(m, 2.0), 1023u);
}

TEST(Metrics, QuantilesSurviveTextRoundTripAndLegacyLinesStillParse) {
  ctl::MetricSnapshot h;
  h.name = "rt.q";
  h.kind = ctl::MetricKind::kHistogram;
  h.count = 4;
  h.sum = 4 + 7 + 32 + 63;
  h.buckets[3] = 2;  // [4, 7]
  h.buckets[6] = 2;  // [32, 63]
  ctl::refresh_quantiles(h);
  EXPECT_EQ(h.p50, 7u);
  EXPECT_EQ(h.p95, 63u);
  EXPECT_EQ(h.p99, 63u);

  std::stringstream ss;
  ctl::write_metrics(ss, {h});
  EXPECT_NE(ss.str().find("p50=7 p95=63 p99=63"), std::string::npos)
      << ss.str();
  const std::vector<ctl::MetricSnapshot> back = ctl::read_metrics(ss);
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0].p50, 7u);
  EXPECT_EQ(back[0].p95, 63u);
  EXPECT_EQ(back[0].p99, 63u);
  EXPECT_EQ(back[0].buckets[3], 2u);
  EXPECT_EQ(back[0].buckets[6], 2u);

  // Pre-quantile writers omitted the p-fields; the reader must still accept
  // their lines (and leaves the estimates at 0 rather than inventing them).
  std::stringstream legacy(
      "# commscope-metrics v1\nhist old.h count=3 sum=712 buckets=7:1,8:2\n");
  const std::vector<ctl::MetricSnapshot> old = ctl::read_metrics(legacy);
  ASSERT_EQ(old.size(), 1u);
  EXPECT_EQ(old[0].count, 3u);
  EXPECT_EQ(old[0].buckets[8], 2u);
  EXPECT_EQ(old[0].p50, 0u);

  // Merge re-derives the quantiles from the summed buckets instead of
  // summing the estimates.
  std::vector<ctl::MetricSnapshot> into = {h};
  ctl::merge_metrics(into, {h});
  EXPECT_EQ(into[0].count, 8u);
  EXPECT_EQ(into[0].p50, 7u);
  EXPECT_EQ(into[0].p95, 63u);
}

// --- minimal JSON parser (validation only) ----------------------------------
//
// Enough JSON to structurally validate a Chrome trace: objects, arrays,
// strings with escapes, numbers, true/false/null. Parses or dies; the test
// then probes a few semantic fields by substring.
class JsonCursor {
 public:
  explicit JsonCursor(const std::string& s) : s_(s) {}
  bool parse() { return value() && (ws(), pos_ == s_.size()); }

 private:
  bool value() {
    ws();
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    ws();
    if (peek() == '}') { ++pos_; return true; }
    for (;;) {
      ws();
      if (!string()) return false;
      ws();
      if (peek() != ':') return false;
      ++pos_;
      if (!value()) return false;
      ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    ws();
    if (peek() == ']') { ++pos_; return true; }
    for (;;) {
      if (!value()) return false;
      ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= s_.size() || std::isxdigit(
                    static_cast<unsigned char>(s_[pos_])) == 0) {
              return false;
            }
          }
        } else if (std::string("\"\\/bfnrt").find(e) == std::string::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool literal(const char* word) {
    const std::size_t n = std::string(word).size();
    if (s_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }
  void ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\n' ||
                                s_[pos_] == '\t' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }
  [[nodiscard]] char peek() const {
    return pos_ < s_.size() ? s_[pos_] : '\0';
  }
  const std::string& s_;
  std::size_t pos_ = 0;
};

TEST(Trace, ChromeJsonRoundTripsThroughParser) {
  ctl::Tracer::enable();
  ctl::Tracer::begin("phase \"quoted\"", ctl::SpanCat::kRun, 2);
  ctl::Tracer::loop_begin(0, 7);
  ctl::Tracer::instant("degradation", ctl::SpanCat::kDegrade);
  ctl::Tracer::loop_end(0);
  ctl::Tracer::end(ctl::SpanCat::kRun, 2);
  {
    ctl::ScopedSpan span("checkpoint", ctl::SpanCat::kCheckpoint);
  }
  ctl::Tracer::disable();
  EXPECT_GE(ctl::Tracer::captured(), 6u);

  std::stringstream ss;
  ctl::Tracer::write_chrome_trace(
      ss, [](std::uint32_t id) { return "loop<" + std::to_string(id) + ">"; });
  const std::string json = ss.str();
  JsonCursor cursor(json);
  EXPECT_TRUE(cursor.parse()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("loop<7>"), std::string::npos) << "resolver not applied";
  EXPECT_NE(json.find("phase \\\"quoted\\\""), std::string::npos)
      << "name not escaped";
  EXPECT_NE(json.find("\"cat\":\"degrade\""), std::string::npos);

  // The text export carries the same events.
  std::stringstream txt;
  ctl::Tracer::write_text(txt);
  EXPECT_NE(txt.str().find("commscope-trace v1"), std::string::npos);
  EXPECT_NE(txt.str().find("degradation"), std::string::npos);
}

TEST(Trace, ContextAndValueExportAsChromeArgs) {
  ctl::Tracer::enable();
  ctl::Tracer::instant("ctx.instant", ctl::SpanCat::kServe, -1, 0x2aULL,
                       7ULL);
  ctl::Tracer::complete("ctx.span", ctl::SpanCat::kServe, -1, 100, 50,
                        0xdeadbeefULL, 0);
  ctl::Tracer::instant("ctx.none", ctl::SpanCat::kServe);
  ctl::Tracer::disable();

  std::stringstream ss;
  ctl::Tracer::write_chrome_trace(ss);
  const std::string json = ss.str();
  JsonCursor cursor(json);
  EXPECT_TRUE(cursor.parse()) << json;
  // ctx is a hex STRING (64-bit ids do not survive JSON doubles); arg is a
  // plain number; zero fields are omitted entirely.
  EXPECT_NE(json.find("\"args\":{\"ctx\":\"2a\",\"v\":7}"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"args\":{\"ctx\":\"deadbeef\"}"), std::string::npos);
  const std::size_t none_at = json.find("ctx.none");
  ASSERT_NE(none_at, std::string::npos);
  const std::size_t line_end = json.find('\n', none_at);
  EXPECT_EQ(json.substr(none_at, line_end - none_at).find("args"),
            std::string::npos)
      << "ctx-less event grew an args block";

  std::stringstream txt;
  ctl::Tracer::write_text(txt);
  EXPECT_NE(txt.str().find("ctx.instant ctx=2a v=7"), std::string::npos)
      << txt.str();
}

TEST(Trace, DisabledRecordPathAllocatesNothing) {
  ctl::Tracer::disable();
  ctl::Counter& c = ctl::counter("test.noalloc");  // registered up front
  ctl::Gauge& g = ctl::gauge("test.noalloc");
  ctl::Histogram& h = ctl::histogram("test.noalloc");
  const std::uint64_t before = tl_allocs;
  for (int i = 0; i < 1000; ++i) {
    ctl::Tracer::begin("x", ctl::SpanCat::kRun);
    ctl::Tracer::loop_begin(0, 1);
    ctl::Tracer::loop_end(0);
    ctl::Tracer::end(ctl::SpanCat::kRun);
    ctl::ScopedSpan span("y", ctl::SpanCat::kFlush);
    c.add(1);
    g.set_max(static_cast<std::uint64_t>(i));
    h.record(static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(tl_allocs, before) << "telemetry hot path allocated";
}

TEST(Trace, EnabledRecordPathAllocatesNothing) {
  ctl::Tracer::enable();
  const std::uint64_t before = tl_allocs;
  for (int i = 0; i < 1000; ++i) {
    ctl::Tracer::loop_begin(0, 1);
    ctl::Tracer::loop_end(0);
  }
  EXPECT_EQ(tl_allocs, before) << "enabled ring write allocated";
  ctl::Tracer::disable();
}

TEST(Trace, RingOverwriteIsCountedNotUnbounded) {
  ctl::Tracer::enable();
  // One thread, one ring: push far past the ring capacity.
  for (int i = 0; i < 10000; ++i) {
    ctl::Tracer::instant("spin", ctl::SpanCat::kRun);
  }
  ctl::Tracer::disable();
  EXPECT_LE(ctl::Tracer::captured(), 4096u);  // bounded by one ring (2048)
  EXPECT_GT(ctl::Tracer::dropped(), 0u);
}

// --- Prometheus exposition conformance --------------------------------------
//
// A line-level validator for the text exposition format (v0.0.4): every
// sample belongs to a family declared by a preceding `# TYPE` line, names
// stay in the legal charset, histogram buckets are cumulative with strictly
// increasing `le` bounds, and `+Inf` equals `_count`.
struct PromFamily {
  std::string type;
  std::vector<std::pair<double, std::uint64_t>> buckets;  ///< (le, cum)
  bool has_inf = false;
  std::uint64_t inf_cum = 0;
  bool has_sum = false;
  bool has_count = false;
  std::uint64_t count = 0;
};

bool prom_name_ok(const std::string& n) {
  if (n.empty()) return false;
  if (std::isalpha(static_cast<unsigned char>(n[0])) == 0 && n[0] != '_' &&
      n[0] != ':') {
    return false;
  }
  for (const char c : n) {
    if (std::isalnum(static_cast<unsigned char>(c)) == 0 && c != '_' &&
        c != ':') {
      return false;
    }
  }
  return true;
}

bool prom_u64(const std::string& s, std::uint64_t& out) {
  const auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc{} && p == s.data() + s.size();
}

/// Returns "" when `text` is conformant, else a diagnostic naming the
/// offending line or family.
std::string prometheus_lint(const std::string& text) {
  std::map<std::string, PromFamily> fams;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream ls(line);
      std::string hash;
      std::string kw;
      std::string fam;
      std::string type;
      ls >> hash >> kw >> fam >> type;
      if (kw != "TYPE") continue;  // HELP and free comments are fine
      if (!prom_name_ok(fam)) return "bad family name: " + line;
      if (type != "counter" && type != "gauge" && type != "histogram") {
        return "bad type: " + line;
      }
      if (fams.count(fam) != 0) return "duplicate TYPE: " + line;
      fams[fam].type = type;
      continue;
    }
    const std::size_t sp = line.rfind(' ');
    if (sp == std::string::npos) return "no value: " + line;
    std::uint64_t value = 0;
    if (!prom_u64(line.substr(sp + 1), value)) return "bad value: " + line;
    const std::size_t brace = line.find('{');
    const std::string name =
        line.substr(0, std::min(brace, line.find(' ')));
    if (!prom_name_ok(name)) return "bad metric name: " + line;
    std::string le;
    if (brace != std::string::npos) {
      const std::size_t q1 = line.find('"', brace);
      const std::size_t q2 =
          q1 == std::string::npos ? q1 : line.find('"', q1 + 1);
      if (line.compare(brace, 5, "{le=\"") != 0 ||
          q2 == std::string::npos) {
        return "unexpected labels: " + line;
      }
      le = line.substr(q1 + 1, q2 - q1 - 1);
    }
    // Resolve the sample to its declared family via the suffix convention.
    auto strip = [&name](const char* suffix) -> std::string {
      const std::string suf(suffix);
      if (name.size() <= suf.size() ||
          name.compare(name.size() - suf.size(), suf.size(), suf) != 0) {
        return {};
      }
      return name.substr(0, name.size() - suf.size());
    };
    std::string fam;
    if (!le.empty()) {
      fam = strip("_bucket");
      if (fam.empty() || fams.count(fam) == 0 ||
          fams[fam].type != "histogram") {
        return "bucket without histogram TYPE: " + line;
      }
      PromFamily& f = fams[fam];
      if (le == "+Inf") {
        f.has_inf = true;
        f.inf_cum = value;
      } else {
        double bound = 0;
        const auto [p, ec] =
            std::from_chars(le.data(), le.data() + le.size(), bound);
        if (ec != std::errc{} || p != le.data() + le.size()) {
          return "bad le: " + line;
        }
        if (f.has_inf) return "+Inf before finite bucket: " + line;
        if (!f.buckets.empty()) {
          if (bound <= f.buckets.back().first) {
            return "le not increasing: " + line;
          }
          if (value < f.buckets.back().second) {
            return "buckets not cumulative: " + line;
          }
        }
        f.buckets.emplace_back(bound, value);
      }
      continue;
    }
    std::string base;
    if (!(base = strip("_total")).empty() && fams.count(base) != 0 &&
        fams[base].type == "counter") {
      continue;
    }
    if (!(base = strip("_sum")).empty() && fams.count(base) != 0 &&
        fams[base].type == "histogram") {
      fams[base].has_sum = true;
      continue;
    }
    if (!(base = strip("_count")).empty() && fams.count(base) != 0 &&
        fams[base].type == "histogram") {
      fams[base].has_count = true;
      fams[base].count = value;
      continue;
    }
    // Gauges and counters are declared under the sample's exact name (the
    // counter family already carries its _total suffix in the TYPE line).
    if (fams.count(name) != 0 && fams[name].type != "histogram") continue;
    return "sample with no matching TYPE: " + line;
  }
  for (const auto& [fam, f] : fams) {
    if (f.type != "histogram") continue;
    if (!f.has_inf || !f.has_sum || !f.has_count) {
      return fam + ": histogram missing +Inf/_sum/_count";
    }
    if (f.inf_cum != f.count) return fam + ": +Inf != _count";
    if (!f.buckets.empty() && f.buckets.back().second > f.count) {
      return fam + ": cumulative buckets exceed _count";
    }
  }
  return {};
}

TEST(Metrics, PrometheusExpositionIsConformant) {
  ctl::MetricSnapshot c;
  c.name = "serve.frames.ok";
  c.kind = ctl::MetricKind::kCounter;
  c.value = 3;
  ctl::MetricSnapshot g;
  g.name = "serve.mem.bytes";
  g.kind = ctl::MetricKind::kGauge;
  g.value = 77;
  ctl::MetricSnapshot h;
  h.name = "rt.hi-st";  // exercises name sanitization
  h.kind = ctl::MetricKind::kHistogram;
  h.count = 4;
  h.sum = 1000;
  h.buckets[0] = 1;
  h.buckets[3] = 2;
  h.buckets[64] = 1;  // overflow bucket: only +Inf can name its bound

  std::stringstream ss;
  ctl::write_prometheus(ss, {c, g, h});
  const std::string text = ss.str();
  EXPECT_EQ(prometheus_lint(text), "") << text;
  EXPECT_NE(text.find("# TYPE commscope_serve_frames_ok_total counter"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("commscope_serve_frames_ok_total 3"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE commscope_serve_mem_bytes gauge"),
            std::string::npos);
  EXPECT_NE(text.find("commscope_rt_hi_st_bucket{le=\"0\"} 1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("commscope_rt_hi_st_bucket{le=\"7\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("commscope_rt_hi_st_bucket{le=\"+Inf\"} 4"),
            std::string::npos);
  EXPECT_NE(text.find("commscope_rt_hi_st_sum 1000"), std::string::npos);
  // The overflow sample has no finite bound — it must appear only in +Inf.
  EXPECT_EQ(text.find("le=\"18446744073709551615\""), std::string::npos);

  // The live registry (whatever prior tests left in it) must lint too.
  std::stringstream live;
  ctl::write_prometheus(live);
  EXPECT_EQ(prometheus_lint(live.str()), "")
      << live.str().substr(0, 2000);
}

// --- cross-process trace stitching ------------------------------------------

std::string write_temp_trace(const char* name, const std::string& body) {
  const std::string path = ::testing::TempDir() + name;
  std::ofstream out(path);
  out << body;
  return path;
}

TEST(TraceMerge, PairsContextsAndShiftsClientClocks) {
  // Daemon trace: the reference timeline. Its serve.hello instant carries
  // the client's handshake clock sample (args.v, ns) at its own trace time.
  const std::string daemon = write_temp_trace(
      "tm_daemon.json",
      "{\"traceEvents\":[\n"
      "{\"pid\":0,\"tid\":0,\"ph\":\"i\",\"ts\":5000.0,\"s\":\"t\","
      "\"name\":\"serve.hello\",\"cat\":\"serve\","
      "\"args\":{\"ctx\":\"abc\",\"v\":2000000}},\n"
      "{\"pid\":0,\"tid\":0,\"ph\":\"X\",\"ts\":5100.0,\"dur\":40.0,"
      "\"name\":\"serve.merge\",\"cat\":\"serve\","
      "\"args\":{\"ctx\":\"abc\",\"v\":3}}\n"
      "],\"displayTimeUnit\":\"ms\"}\n");
  // Client trace: ship.hello at local ts 2000us, clock sample 2000000ns.
  // offset = 5000 - 2000000/1000 = +3000us.
  const std::string client = write_temp_trace(
      "tm_client.json",
      "{\"traceEvents\":[\n"
      "{\"pid\":0,\"tid\":0,\"ph\":\"i\",\"ts\":2000.0,\"s\":\"t\","
      "\"name\":\"ship.hello\",\"cat\":\"serve\","
      "\"args\":{\"ctx\":\"abc\",\"v\":2000000}},\n"
      "{\"pid\":0,\"tid\":0,\"ph\":\"X\",\"ts\":2100.0,\"dur\":50.0,"
      "\"name\":\"ship.frame\",\"cat\":\"serve\","
      "\"args\":{\"ctx\":\"abc\",\"v\":1}}\n"
      "],\"displayTimeUnit\":\"ms\"}\n");
  // A third file with no pairable handshake keeps its own clock.
  const std::string lone = write_temp_trace(
      "tm_lone.json",
      "{\"traceEvents\":[\n"
      "{\"pid\":0,\"tid\":0,\"ph\":\"i\",\"ts\":100.0,\"s\":\"t\","
      "\"name\":\"lone\",\"cat\":\"run\"}\n"
      "],\"displayTimeUnit\":\"ms\"}\n");

  std::ostringstream os;
  const ctl::TraceMergeResult r =
      ctl::merge_traces({daemon, client, lone}, os);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.files, 3u);
  EXPECT_EQ(r.events, 5u);
  EXPECT_EQ(r.contexts_paired, 1u);
  EXPECT_EQ(r.files_shifted, 1u);

  const std::string out = os.str();
  JsonCursor cursor(out);
  EXPECT_TRUE(cursor.parse()) << out;
  // The unpaired file rebased the whole timeline: its event is earliest
  // (100 < 5000), so it lands at t=0 in its own pid lane.
  const std::size_t lone_at = out.find("\"name\":\"lone\"");
  ASSERT_NE(lone_at, std::string::npos);
  const std::size_t lone_line = out.rfind('\n', lone_at) + 1;
  EXPECT_EQ(out.compare(lone_line, 22, "{\"pid\":2,\"tid\":0,\"ph\":"), 0)
      << out.substr(lone_line, 80);
  EXPECT_NE(out.find("\"ts\":0.0", lone_line), std::string::npos);
  // Both hellos land on the same instant after the shift: 5000 - 100.
  std::size_t hellos_at_4900 = 0;
  for (std::size_t at = out.find("\"ts\":4900.0"); at != std::string::npos;
       at = out.find("\"ts\":4900.0", at + 1)) {
    ++hellos_at_4900;
  }
  EXPECT_EQ(hellos_at_4900, 2u) << out;
  EXPECT_NE(out.find("\"contextsPaired\":1,\"filesShifted\":1"),
            std::string::npos);
}

TEST(TraceMerge, RejectsNonTraceInputAndEmptyList) {
  std::ostringstream os;
  ctl::TraceMergeResult r = ctl::merge_traces({}, os);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error, "no input traces");

  const std::string garbage =
      write_temp_trace("tm_garbage.json", "hello world\n");
  r = ctl::merge_traces({garbage}, os);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find("not a Chrome trace"), std::string::npos)
      << r.error;
  EXPECT_TRUE(os.str().empty()) << "failed merge must write nothing";
}

// Last: floods the fixed-capacity registry. Registrations past the cap land
// on the shared overflow sink instead of failing, and the spill is counted.
// Any test registering new names after this one would hit the overflow
// entry, so this must stay at the end of the file.
TEST(Registry, OverflowSpillsToSharedSinkAndCounts) {
  ctl::Counter& full = ctl::counter("telemetry.registry_full");
  const std::uint64_t spills_before = full.value();
  std::vector<ctl::Counter*> made;
  for (int i = 0; i < 300; ++i) {
    const std::string name = "test.flood." + std::to_string(i);
    made.push_back(&ctl::counter(name.c_str()));
    made.back()->add(1);  // must be safe to use, wherever it landed
  }
  EXPECT_GT(full.value(), spills_before) << "no spill was counted";
  // Spilled names share one sink; the process did not crash and every
  // reference stayed usable — that is the whole contract.
}

#else  // COMMSCOPE_TELEMETRY_DISABLED

TEST(DisabledBuild, ApiInlinesToNoOps) {
  ctl::Counter& c = ctl::counter("off.counter");
  c.add(41);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_FALSE(c.saturated());
  ctl::gauge("off.gauge").set_max(9);
  EXPECT_EQ(ctl::gauge("off.gauge").value(), 0u);
  ctl::histogram("off.hist").record(3);
  EXPECT_EQ(ctl::histogram("off.hist").count(), 0u);
  EXPECT_TRUE(ctl::snapshot_all().empty());

  ctl::Tracer::enable();
  EXPECT_FALSE(ctl::Tracer::enabled());
  ctl::Tracer::loop_begin(0, 1);
  EXPECT_EQ(ctl::Tracer::captured(), 0u);
  std::stringstream ss;
  ctl::Tracer::write_chrome_trace(ss);
  EXPECT_NE(ss.str().find("\"traceEvents\":[]"), std::string::npos);
}

TEST(DisabledBuild, ApiAllocatesNothing) {
  ctl::Counter& c = ctl::counter("off.noalloc");
  const std::uint64_t before = tl_allocs;
  for (int i = 0; i < 1000; ++i) {
    c.add(1);
    ctl::Tracer::begin("x", ctl::SpanCat::kRun);
    ctl::ScopedSpan span("y", ctl::SpanCat::kFlush);
  }
  EXPECT_EQ(tl_allocs, before);
}

#endif  // COMMSCOPE_TELEMETRY_DISABLED

}  // namespace
