// SD3-style stride profiler tests: FSM compression, interval-overlap
// detection, memory scaling with access regularity.
#include <gtest/gtest.h>

#include "baseline/sd3_profiler.hpp"
#include "instrument/loop_registry.hpp"

namespace cb = commscope::baseline;
namespace ci = commscope::instrument;

namespace {

ci::LoopId loop_id(const char* name) {
  return ci::LoopRegistry::instance().declare("sd3", name);
}

}  // namespace

TEST(Sd3Profiler, CompressesRegularStrideToOneEntry) {
  cb::Sd3Profiler sd3(4);
  const ci::LoopId l = loop_id("stream");
  sd3.on_thread_begin(0);
  sd3.on_loop_enter(0, l);
  for (int i = 0; i < 1000; ++i) {
    sd3.on_access(0, 0x1000 + static_cast<std::uintptr_t>(i) * 8, 8,
                  ci::AccessKind::kRead);
  }
  sd3.on_loop_exit(0);
  sd3.finalize();
  EXPECT_EQ(sd3.entry_count(), 1u);
  EXPECT_EQ(sd3.access_count(), 1000u);
  EXPECT_LT(sd3.memory_bytes(), 1000u);  // 1000 accesses in one entry
}

TEST(Sd3Profiler, IrregularAccessesCostManyEntries) {
  cb::Sd3Profiler sd3(4);
  const ci::LoopId l = loop_id("random");
  sd3.on_thread_begin(0);
  sd3.on_loop_enter(0, l);
  std::uint64_t state = 17;
  for (int i = 0; i < 1000; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    sd3.on_access(0, 0x10000 + (state >> 30) % 100000 * 8, 8,
                  ci::AccessKind::kRead);
  }
  sd3.on_loop_exit(0);
  sd3.finalize();
  // Random addresses defeat the stride FSM: entry count near access count.
  EXPECT_GT(sd3.entry_count(), 300u);
}

TEST(Sd3Profiler, DetectsOverlappingWriteReadIntervals) {
  cb::Sd3Profiler sd3(4);
  const ci::LoopId l = loop_id("overlap");
  // Thread 0 writes [0x2000, 0x2000+100*8); thread 1 reads the same range in
  // the same loop.
  sd3.on_thread_begin(0);
  sd3.on_loop_enter(0, l);
  for (int i = 0; i < 100; ++i) {
    sd3.on_access(0, 0x2000 + static_cast<std::uintptr_t>(i) * 8, 8,
                  ci::AccessKind::kWrite);
  }
  sd3.on_loop_exit(0);
  sd3.on_thread_begin(1);
  sd3.on_loop_enter(1, l);
  for (int i = 0; i < 100; ++i) {
    sd3.on_access(1, 0x2000 + static_cast<std::uintptr_t>(i) * 8, 8,
                  ci::AccessKind::kRead);
  }
  sd3.on_loop_exit(1);
  sd3.finalize();
  const auto m = sd3.communication_matrix();
  EXPECT_GT(m.at(0, 1), 0u);
  EXPECT_EQ(m.at(1, 0), 0u);  // reads don't produce
  // Flow-insensitive interval overlap over-approximates but stays within the
  // full range volume.
  EXPECT_LE(m.at(0, 1), 100u * 8u + 8u);
}

TEST(Sd3Profiler, DisjointRangesDoNotCommunicate) {
  cb::Sd3Profiler sd3(4);
  const ci::LoopId l = loop_id("disjoint");
  sd3.on_loop_enter(0, l);
  for (int i = 0; i < 50; ++i) {
    sd3.on_access(0, 0x3000 + static_cast<std::uintptr_t>(i) * 8, 8,
                  ci::AccessKind::kWrite);
  }
  sd3.on_loop_exit(0);
  sd3.on_loop_enter(1, l);
  for (int i = 0; i < 50; ++i) {
    sd3.on_access(1, 0x9000 + static_cast<std::uintptr_t>(i) * 8, 8,
                  ci::AccessKind::kRead);
  }
  sd3.on_loop_exit(1);
  sd3.finalize();
  EXPECT_EQ(sd3.communication_matrix().total(), 0u);
}

TEST(Sd3Profiler, DifferentLoopsDoNotIntersect) {
  cb::Sd3Profiler sd3(4);
  const ci::LoopId la = loop_id("loop_a");
  const ci::LoopId lb = loop_id("loop_b");
  sd3.on_loop_enter(0, la);
  for (int i = 0; i < 50; ++i) {
    sd3.on_access(0, 0x4000 + static_cast<std::uintptr_t>(i) * 8, 8,
                  ci::AccessKind::kWrite);
  }
  sd3.on_loop_exit(0);
  sd3.on_loop_enter(1, lb);  // same addresses, different loop scope
  for (int i = 0; i < 50; ++i) {
    sd3.on_access(1, 0x4000 + static_cast<std::uintptr_t>(i) * 8, 8,
                  ci::AccessKind::kRead);
  }
  sd3.on_loop_exit(1);
  sd3.finalize();
  EXPECT_EQ(sd3.communication_matrix().total(), 0u);
}

TEST(Sd3Profiler, MatrixThrowsBeforeFinalize) {
  cb::Sd3Profiler sd3(4);
  EXPECT_THROW(sd3.communication_matrix(), std::logic_error);
}

TEST(Sd3Profiler, NegativeStrideCompresses) {
  cb::Sd3Profiler sd3(4);
  const ci::LoopId l = loop_id("backward");
  sd3.on_loop_enter(0, l);
  for (int i = 100; i > 0; --i) {
    sd3.on_access(0, 0x6000 + static_cast<std::uintptr_t>(i) * 8, 8,
                  ci::AccessKind::kRead);
  }
  sd3.on_loop_exit(0);
  sd3.finalize();
  EXPECT_EQ(sd3.entry_count(), 1u);
}
