// Cross-validation and per-class metric tests.
#include <gtest/gtest.h>

#include "patterns/decision_tree.hpp"
#include "patterns/validation.hpp"

namespace cp = commscope::patterns;

namespace {

/// Hand-built 2-relevant-class confusion for metric arithmetic checks:
/// class 0 actual: 8 correct, 2 predicted as class 1;
/// class 1 actual: 1 predicted as class 0, 9 correct.
cp::Evaluation tiny_eval() {
  constexpr int k = static_cast<int>(std::size(cp::kAllPatternClasses));
  cp::Evaluation ev;
  ev.confusion.assign(k, std::vector<int>(k, 0));
  ev.confusion[0][0] = 8;
  ev.confusion[0][1] = 2;
  ev.confusion[1][0] = 1;
  ev.confusion[1][1] = 9;
  ev.accuracy = 17.0 / 20.0;
  return ev;
}

}  // namespace

TEST(ClassMetrics, PrecisionRecallF1Arithmetic) {
  const auto ms = cp::class_metrics(tiny_eval());
  // class 0: precision 8/9, recall 8/10.
  EXPECT_NEAR(ms[0].precision, 8.0 / 9.0, 1e-12);
  EXPECT_NEAR(ms[0].recall, 0.8, 1e-12);
  EXPECT_EQ(ms[0].support, 10);
  const double f1 = 2.0 * (8.0 / 9.0) * 0.8 / (8.0 / 9.0 + 0.8);
  EXPECT_NEAR(ms[0].f1, f1, 1e-12);
  // class 1: precision 9/11, recall 9/10.
  EXPECT_NEAR(ms[1].precision, 9.0 / 11.0, 1e-12);
  EXPECT_NEAR(ms[1].recall, 0.9, 1e-12);
  // unsupported classes report zero support.
  EXPECT_EQ(ms[2].support, 0);
}

TEST(MacroF1, AveragesOnlySupportedClasses) {
  const double f1 = cp::macro_f1(tiny_eval());
  const auto ms = cp::class_metrics(tiny_eval());
  EXPECT_NEAR(f1, (ms[0].f1 + ms[1].f1) / 2.0, 1e-12);
}

TEST(CrossValidation, StratifiedFoldsCoverEveryExampleOnce) {
  cp::GeneratorOptions opts;
  opts.threads = 16;
  opts.jitter = 0.25;
  opts.background = 0.05;
  const auto data = cp::featurize(cp::make_corpus(15, opts, 606));
  const cp::CrossValidation cv =
      cp::cross_validate<cp::KnnClassifier>(data, 5);
  ASSERT_EQ(cv.fold_accuracies.size(), 5u);
  // Pooled confusion counts every example exactly once.
  int total = 0;
  for (const auto& row : cv.pooled.confusion) {
    for (int v : row) total += v;
  }
  EXPECT_EQ(total, static_cast<int>(data.size()));
}

TEST(CrossValidation, PaperAccuracyHoldsAcrossFoldsAndClassifiers) {
  cp::GeneratorOptions opts;
  opts.threads = 16;
  opts.jitter = 0.25;
  opts.background = 0.05;
  const auto data = cp::featurize(cp::make_corpus(25, opts, 707));

  const auto knn = cp::cross_validate<cp::KnnClassifier>(data, 5);
  EXPECT_GE(knn.mean_accuracy, 0.97);
  EXPECT_GE(knn.min_accuracy, 0.90);
  EXPECT_GE(cp::macro_f1(knn.pooled), 0.97);

  const auto centroid =
      cp::cross_validate<cp::NearestCentroidClassifier>(data, 5);
  EXPECT_GE(centroid.mean_accuracy, 0.97);

  const auto tree = cp::cross_validate<cp::DecisionTreeClassifier>(data, 5);
  EXPECT_GE(tree.mean_accuracy, 0.93);
}

TEST(CrossValidation, PerClassF1AllHigh) {
  cp::GeneratorOptions opts;
  opts.threads = 16;
  opts.background = 0.05;
  const auto data = cp::featurize(cp::make_corpus(20, opts, 808));
  const auto cv = cp::cross_validate<cp::KnnClassifier>(data, 4);
  for (const cp::ClassMetrics& m : cp::class_metrics(cv.pooled)) {
    ASSERT_GT(m.support, 0) << cp::to_string(m.label);
    EXPECT_GE(m.f1, 0.9) << cp::to_string(m.label);
  }
}
