// IPM-style log profiler tests: post-mortem-only semantics, record-size
// memory law, replay parity with the exact detector.
#include <gtest/gtest.h>

#include <thread>

#include "baseline/ipm_profiler.hpp"
#include "sigmem/exact_signature.hpp"

namespace cb = commscope::baseline;
namespace ci = commscope::instrument;
namespace sg = commscope::sigmem;

TEST(IpmProfiler, MatrixUnavailableBeforeFinalize) {
  cb::IpmProfiler ipm(4);
  ipm.on_access(0, 0x1000, 8, ci::AccessKind::kWrite);
  EXPECT_THROW(ipm.communication_matrix(), std::logic_error);
  ipm.finalize();
  EXPECT_NO_THROW(ipm.communication_matrix());
}

TEST(IpmProfiler, SixteenBytesPerRecord) {
  cb::IpmProfiler ipm(4);
  for (int i = 0; i < 1000; ++i) {
    ipm.on_access(0, 0x1000 + static_cast<std::uintptr_t>(i) * 8, 8,
                  ci::AccessKind::kWrite);
  }
  EXPECT_EQ(ipm.record_count(), 1000u);
  EXPECT_EQ(ipm.memory_bytes(), 16000u);
}

TEST(IpmProfiler, ReplayMatchesExactDetection) {
  cb::IpmProfiler ipm(8);
  sg::ExactSignature exact(8);
  commscope::core::Matrix expected(8);

  std::uint64_t state = 5;
  for (int i = 0; i < 20000; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    const std::uintptr_t addr = 0x40000 + (state >> 33) % 300 * 8;
    const int tid = static_cast<int>((state >> 20) % 8);
    if (((state >> 9) & 3) == 0) {
      ipm.on_access(tid, addr, 8, ci::AccessKind::kWrite);
      exact.on_write(addr, tid);
    } else {
      ipm.on_access(tid, addr, 8, ci::AccessKind::kRead);
      if (const auto p = exact.on_read(addr, tid)) expected.at(*p, tid) += 8;
    }
  }
  ipm.finalize();
  EXPECT_EQ(ipm.communication_matrix(), expected);
  EXPECT_GT(expected.total(), 0u);
}

TEST(IpmProfiler, FinalizeIsIdempotent) {
  cb::IpmProfiler ipm(4);
  ipm.on_access(0, 0x2000, 8, ci::AccessKind::kWrite);
  ipm.on_access(1, 0x2000, 8, ci::AccessKind::kRead);
  ipm.finalize();
  const auto m1 = ipm.communication_matrix();
  ipm.finalize();
  EXPECT_EQ(ipm.communication_matrix(), m1);
  EXPECT_EQ(m1.at(0, 1), 8u);
}

TEST(IpmProfiler, PerThreadLogsMergeInTemporalOrder) {
  // Writer and reader alternate strictly; if replay ignored the sequence
  // numbers and processed per-thread logs back to back, the reader's N reads
  // would collapse to a single first-touch dependency.
  cb::IpmProfiler ipm(4);
  constexpr int kRounds = 50;
  for (int i = 0; i < kRounds; ++i) {
    ipm.on_access(0, 0x3000, 8, ci::AccessKind::kWrite);
    ipm.on_access(1, 0x3000, 8, ci::AccessKind::kRead);
  }
  ipm.finalize();
  EXPECT_EQ(ipm.communication_matrix().at(0, 1),
            static_cast<std::uint64_t>(kRounds) * 8);
}

TEST(IpmProfiler, ConcurrentAppendsAllRecorded) {
  cb::IpmProfiler ipm(8);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&ipm, t] {
      for (int i = 0; i < 5000; ++i) {
        ipm.on_access(t, 0x5000 + static_cast<std::uintptr_t>(i % 64) * 8, 8,
                      ci::AccessKind::kRead);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(ipm.record_count(), 20000u);
}
