// Thread-mapping tests: topology cost model, mapping validity, and the
// communication-aware mapper beating locality-oblivious placements on
// communication-heavy patterns (the paper's motivating application).
#include <gtest/gtest.h>

#include "mapping/mapper.hpp"
#include "mapping/topology.hpp"
#include "patterns/generators.hpp"

namespace cm = commscope::mapping;
namespace cp = commscope::patterns;
namespace cc = commscope::core;
namespace cs = commscope::support;

TEST(Topology, PaperTestbedShape) {
  const cm::Topology t = cm::Topology::paper_testbed();
  EXPECT_EQ(t.hardware_threads(), 16);
  EXPECT_EQ(t.sockets(), 2);
  EXPECT_EQ(t.cores_per_socket(), 8);
}

TEST(Topology, DistanceHierarchy) {
  const cm::Topology t(2, 4, 2);  // 16 hw threads, SMT pairs
  EXPECT_DOUBLE_EQ(t.distance(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(t.distance(0, 1), 1.0);   // SMT siblings share a core
  EXPECT_DOUBLE_EQ(t.distance(0, 2), 10.0);  // same socket
  EXPECT_DOUBLE_EQ(t.distance(0, 8), 50.0);  // cross socket
  EXPECT_DOUBLE_EQ(t.distance(8, 0), t.distance(0, 8));
}

TEST(Topology, RejectsDegenerateShapes) {
  EXPECT_THROW(cm::Topology(0, 4), std::invalid_argument);
  EXPECT_THROW(cm::Topology(2, 0), std::invalid_argument);
}

TEST(MappingValidity, DetectsDuplicatesAndRange) {
  const cm::Topology t(2, 2);
  EXPECT_TRUE(cm::is_valid_mapping({0, 1, 2}, t));
  EXPECT_FALSE(cm::is_valid_mapping({0, 0}, t));   // duplicate
  EXPECT_FALSE(cm::is_valid_mapping({0, 4}, t));   // out of range
  EXPECT_FALSE(cm::is_valid_mapping({-1}, t));
}

TEST(MappingCost, WeighsBytesByDistance) {
  const cm::Topology t(2, 2);  // hw 0,1 on socket 0; 2,3 on socket 1
  cc::Matrix m(2);
  m.at(0, 1) = 100;
  EXPECT_DOUBLE_EQ(cm::mapping_cost(m, t, {0, 1}), 100 * 10.0);
  EXPECT_DOUBLE_EQ(cm::mapping_cost(m, t, {0, 2}), 100 * 50.0);
}

TEST(Mappings, GeneratorsAreValid) {
  const cm::Topology t = cm::Topology::paper_testbed();
  cs::SplitMix64 rng(1);
  EXPECT_TRUE(cm::is_valid_mapping(cm::identity_mapping(16, t), t));
  EXPECT_TRUE(cm::is_valid_mapping(cm::scatter_mapping(16, t), t));
  EXPECT_TRUE(cm::is_valid_mapping(cm::random_mapping(16, t, rng), t));
}

TEST(Mappings, ScatterAlternatesSockets) {
  const cm::Topology t = cm::Topology::paper_testbed();
  const cm::Mapping m = cm::scatter_mapping(4, t);
  EXPECT_EQ(t.socket_of(m[0]), 0);
  EXPECT_EQ(t.socket_of(m[1]), 1);
  EXPECT_EQ(t.socket_of(m[2]), 0);
  EXPECT_EQ(t.socket_of(m[3]), 1);
}

TEST(Mappings, TooManyThreadsRejected) {
  const cm::Topology t(1, 2);
  EXPECT_THROW(cm::identity_mapping(3, t), std::invalid_argument);
}

TEST(GreedyMapping, CoLocatesHeavyPairs) {
  const cm::Topology t = cm::Topology::paper_testbed();
  // Threads 0-1 and 2-3 communicate heavily; greedy must place each pair on
  // one socket.
  cc::Matrix m(4);
  m.at(0, 1) = 1000;
  m.at(1, 0) = 1000;
  m.at(2, 3) = 1000;
  m.at(3, 2) = 1000;
  const cm::Mapping g = cm::greedy_mapping(m, t);
  ASSERT_TRUE(cm::is_valid_mapping(g, t));
  EXPECT_EQ(t.socket_of(g[0]), t.socket_of(g[1]));
  EXPECT_EQ(t.socket_of(g[2]), t.socket_of(g[3]));
}

class BestVsBaselines : public ::testing::TestWithParam<cp::PatternClass> {};

TEST_P(BestVsBaselines, BestMappingNeverLosesToAnyBaseline) {
  const cm::Topology t = cm::Topology::paper_testbed();
  cp::GeneratorOptions opts;
  opts.threads = 16;
  opts.background = 0.05;
  cs::SplitMix64 rng(static_cast<std::uint64_t>(GetParam()) + 99);
  const cc::Matrix m = cp::generate(GetParam(), opts, rng);
  const cm::Mapping best = cm::best_mapping(m, t);
  ASSERT_TRUE(cm::is_valid_mapping(best, t));
  const double best_cost = cm::mapping_cost(m, t, best);
  EXPECT_LE(best_cost, cm::mapping_cost(m, t, cm::scatter_mapping(16, t)))
      << cp::to_string(GetParam());
  EXPECT_LE(best_cost, cm::mapping_cost(m, t, cm::identity_mapping(16, t)))
      << cp::to_string(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllPatterns, BestVsBaselines,
                         ::testing::ValuesIn(cp::kAllPatternClasses));

TEST(GreedyMapping, WinsOnLocalisedPatterns) {
  // On locality-rich topologies (halo bands, pipelines, hubs) the greedy
  // packer alone must already beat the scatter placement; dense diffuse
  // patterns (all-to-all-like) are covered by best_mapping above.
  const cm::Topology t = cm::Topology::paper_testbed();
  cp::GeneratorOptions opts;
  opts.threads = 16;
  opts.background = 0.05;
  for (const cp::PatternClass cls :
       {cp::PatternClass::kStructuredGrid, cp::PatternClass::kPipeline,
        cp::PatternClass::kMasterWorker}) {
    cs::SplitMix64 rng(static_cast<std::uint64_t>(cls) + 7);
    const cc::Matrix m = cp::generate(cls, opts, rng);
    const double scatter = cm::mapping_cost(m, t, cm::scatter_mapping(16, t));
    const double greedy = cm::mapping_cost(m, t, cm::greedy_mapping(m, t));
    EXPECT_LE(greedy, scatter) << cp::to_string(cls);
  }
}

TEST(RefineMapping, NeverIncreasesCost) {
  const cm::Topology t = cm::Topology::paper_testbed();
  cp::GeneratorOptions opts;
  opts.threads = 16;
  cs::SplitMix64 rng(7);
  const cc::Matrix m =
      cp::generate(cp::PatternClass::kStructuredGrid, opts, rng);
  const cm::Mapping start = cm::scatter_mapping(16, t);
  const double before = cm::mapping_cost(m, t, start);
  const cm::Mapping refined = cm::refine_mapping(m, t, start);
  EXPECT_TRUE(cm::is_valid_mapping(refined, t));
  EXPECT_LE(cm::mapping_cost(m, t, refined), before);
}

TEST(RefineMapping, FindsCoLocationForOnePair) {
  const cm::Topology t(2, 2);
  cc::Matrix m(2);
  m.at(0, 1) = 500;
  // Start with the pair split across sockets; refinement must co-locate.
  const cm::Mapping refined = cm::refine_mapping(m, t, {0, 2});
  EXPECT_DOUBLE_EQ(cm::mapping_cost(m, t, refined), 500 * 10.0);
}

// --- recursive bisection --------------------------------------------------------

TEST(BisectionMapping, ValidAndSeparatesTwoCliques) {
  const cm::Topology t(2, 2);  // 4 hw threads: {0,1} socket0, {2,3} socket1
  // Two 2-thread cliques with no cross traffic must land on separate sockets.
  cc::Matrix m(4);
  m.at(0, 2) = 1000;
  m.at(2, 0) = 1000;
  m.at(1, 3) = 1000;
  m.at(3, 1) = 1000;
  const cm::Mapping b = cm::bisection_mapping(m, t);
  ASSERT_TRUE(cm::is_valid_mapping(b, t));
  EXPECT_EQ(t.socket_of(b[0]), t.socket_of(b[2]));
  EXPECT_EQ(t.socket_of(b[1]), t.socket_of(b[3]));
  EXPECT_NE(t.socket_of(b[0]), t.socket_of(b[1]));
  // Every clique stays same-socket (distance 10), nothing crosses (50).
  EXPECT_DOUBLE_EQ(cm::mapping_cost(m, t, b), 4000 * 10.0);
}

TEST(BisectionMapping, BeatsScatterOnBlockStructure) {
  const cm::Topology t = cm::Topology::paper_testbed();
  // Block-diagonal communication: threads 0-7 talk among themselves, 8-15
  // likewise — the structure recursive bisection is built for.
  cc::Matrix m(16);
  cs::SplitMix64 rng(17);
  for (int block = 0; block < 2; ++block) {
    for (int a = block * 8; a < (block + 1) * 8; ++a) {
      for (int b = block * 8; b < (block + 1) * 8; ++b) {
        if (a != b) m.at(a, b) = 100 + rng.next_below(50);
      }
    }
  }
  const double bisect = cm::mapping_cost(m, t, cm::bisection_mapping(m, t));
  const double scatter = cm::mapping_cost(m, t, cm::scatter_mapping(16, t));
  EXPECT_LT(bisect, scatter);
  // Perfect split: no cross-socket traffic at all.
  const cm::Mapping b = cm::bisection_mapping(m, t);
  for (int a = 0; a < 8; ++a) {
    for (int c = 0; c < 8; ++c) {
      EXPECT_EQ(t.socket_of(b[static_cast<std::size_t>(a)]),
                t.socket_of(b[static_cast<std::size_t>(c)]));
    }
  }
}

TEST(BisectionMapping, HandlesOddThreadCounts) {
  const cm::Topology t = cm::Topology::paper_testbed();
  cc::Matrix m(5);
  m.at(0, 1) = 10;
  m.at(3, 4) = 10;
  const cm::Mapping b = cm::bisection_mapping(m, t);
  EXPECT_TRUE(cm::is_valid_mapping(b, t));
  EXPECT_EQ(b.size(), 5u);
}

TEST(BestMapping, ConsidersBisectionCandidate) {
  const cm::Topology t = cm::Topology::paper_testbed();
  cc::Matrix m(16);
  for (int block = 0; block < 2; ++block) {
    for (int a = block * 8; a < (block + 1) * 8; ++a) {
      for (int b = block * 8; b < (block + 1) * 8; ++b) {
        if (a != b) m.at(a, b) = 100;
      }
    }
  }
  const double best = cm::mapping_cost(m, t, cm::best_mapping(m, t));
  const double bisect = cm::mapping_cost(m, t, cm::bisection_mapping(m, t));
  EXPECT_LE(best, bisect);
}
