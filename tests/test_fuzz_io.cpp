// Fuzz-style robustness tests for the text-format loaders.
//
// Every loader treats its input as hostile: seeded random byte flips and
// truncations of valid matrix, trace and checkpoint files must surface as a
// clean std::runtime_error — never a crash, hang, or silently-garbage
// result. Deterministic (support::SplitMix64 with fixed seeds) so any
// failure replays identically.
#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/epoch_io.hpp"
#include "core/flight_recorder.hpp"
#include "core/matrix_io.hpp"
#include "core/profiler.hpp"
#include "instrument/loop_registry.hpp"
#include "instrument/trace.hpp"
#include "resilience/checkpoint.hpp"
#include "serve/frame.hpp"
#include "serve/journal.hpp"
#include "serve/server.hpp"
#include "serve/session.hpp"
#include "support/memtrack.hpp"
#include "support/rng.hpp"
#include "support/textio.hpp"

namespace cc = commscope::core;
namespace ci = commscope::instrument;
namespace cr = commscope::resilience;
namespace cs = commscope::support;

namespace {

constexpr int kIterations = 200;

std::string valid_matrix_file() {
  cc::Matrix m(6);
  std::uint64_t v = 1;
  for (int p = 0; p < 6; ++p) {
    for (int c = 0; c < 6; ++c) m.at(p, c) = (v++ * 2654435761u) % 100000;
  }
  std::stringstream ss;
  cc::write_matrix(ss, m);
  return ss.str();
}

std::string valid_trace_file() {
  const ci::LoopId id =
      ci::LoopRegistry::instance().declare("test_fuzz_io", "loop");
  ci::TraceRecorder rec;
  rec.on_thread_begin(0);
  rec.on_thread_begin(1);
  rec.on_loop_enter(0, id);
  for (int i = 0; i < 40; ++i) {
    rec.on_access(0, 0x1000 + static_cast<std::uintptr_t>(i) * 8, 8,
                  ci::AccessKind::kWrite);
    rec.on_access(1, 0x1000 + static_cast<std::uintptr_t>(i) * 8, 8,
                  ci::AccessKind::kRead);
  }
  rec.on_loop_exit(0);
  std::stringstream ss;
  ci::write_trace(ss, rec.events());
  return ss.str();
}

std::string valid_checkpoint_file() {
  cc::ProfilerOptions o;
  o.max_threads = 4;
  cc::Profiler prof(o);
  prof.on_thread_begin(0);
  prof.on_thread_begin(1);
  for (int i = 0; i < 20; ++i) {
    prof.on_access(0, 0x2000 + static_cast<std::uintptr_t>(i) * 8, 8,
                   ci::AccessKind::kWrite);
    prof.on_access(1, 0x2000 + static_cast<std::uintptr_t>(i) * 8, 8,
                   ci::AccessKind::kRead);
  }
  cr::CheckpointMeta meta;
  meta.events = 80;
  return serialize_checkpoint(prof, meta, prof.stats());
}

/// Flips one random byte (possibly to an arbitrary value) or truncates at a
/// random position, driven by `rng`.
std::string damage(const std::string& original, cs::SplitMix64& rng) {
  std::string text = original;
  if (rng.next_below(4) == 0) {
    return text.substr(0, rng.next_below(text.size()));
  }
  const std::size_t pos = static_cast<std::size_t>(rng.next_below(text.size()));
  const char replacement = static_cast<char>(rng.next_below(256));
  if (text[pos] == replacement) {
    text[pos] = static_cast<char>(replacement ^ 0x5a);
  } else {
    text[pos] = replacement;
  }
  return text;
}

}  // namespace

TEST(FuzzIo, DamagedMatrixFilesAlwaysThrowCleanly) {
  const std::string original = valid_matrix_file();
  cs::SplitMix64 rng(0xfadedbee);
  int rejected = 0;
  for (int i = 0; i < kIterations; ++i) {
    std::stringstream ss(damage(original, rng));
    try {
      (void)cc::read_matrix(ss);
    } catch (const std::runtime_error&) {
      ++rejected;
    }
    // No other exception type and no crash: anything else fails the test.
  }
  // Version-2 files carry a CRC over the whole payload, so *every* damaged
  // variant must be rejected.
  EXPECT_EQ(rejected, kIterations);
}

TEST(FuzzIo, DamagedTraceFilesNeverCrash) {
  const std::string original = valid_trace_file();
  cs::SplitMix64 rng(0x7e57ab1e);
  int rejected = 0;
  for (int i = 0; i < kIterations; ++i) {
    std::stringstream ss(damage(original, rng));
    try {
      (void)ci::read_trace(ss);
    } catch (const std::runtime_error&) {
      ++rejected;
    }
  }
  EXPECT_EQ(rejected, kIterations);
}

TEST(FuzzIo, DamagedCheckpointFilesAlwaysThrowCleanly) {
  const std::string original = valid_checkpoint_file();
  cs::SplitMix64 rng(0xc0ffee);
  int rejected = 0;
  for (int i = 0; i < kIterations; ++i) {
    try {
      (void)cr::parse_checkpoint_text(damage(original, rng));
    } catch (const std::runtime_error&) {
      ++rejected;
    }
  }
  EXPECT_EQ(rejected, kIterations);
}

// --- serve wire-frame parser -----------------------------------------------
// The daemon's FrameDecoder sits on a public socket, so its threat model is
// harsher than the file loaders': arbitrary bytes, length-prefix lies,
// CRC bitflips and concatenated garbage must all end in a *poisoned* decoder
// (counted, provenance-typed) with the payload buffer never growing past the
// declared cap — no exception, no crash, no allocation amplification.

namespace {

std::string valid_frame_stream() {
  namespace sv = commscope::serve;
  std::string s;
  s += sv::encode_frame(sv::FrameType::kHello,
                        "commscope-hello 1 session 99 threads 4");
  s += sv::encode_frame(sv::FrameType::kEpochs,
                        std::string(300, 'e') + " epoch document body");
  s += sv::encode_frame(sv::FrameType::kHeartbeat, {});
  return s;
}

}  // namespace

TEST(FuzzIo, DamagedFrameStreamsPoisonOrTruncateNeverCrash) {
  namespace sv = commscope::serve;
  const std::string original = valid_frame_stream();
  constexpr std::size_t kCap = 4096;
  cs::SplitMix64 rng(0xf4a3eD);
  int poisoned = 0;
  int torn = 0;
  for (int i = 0; i < kIterations; ++i) {
    const std::string text = damage(original, rng);
    sv::FrameDecoder d(kCap);
    const bool ok = d.feed(text.data(), text.size());
    while (d.next().has_value()) {
    }
    if (!ok) {
      // Every poisoning carries a typed reason, and a poisoned decoder
      // stays poisoned even when fed a pristine frame afterwards.
      ++poisoned;
      EXPECT_NE(d.error(), sv::FrameError::kNone);
      const std::string fresh = sv::encode_frame(sv::FrameType::kBye, {});
      EXPECT_FALSE(d.feed(fresh.data(), fresh.size()));
      EXPECT_FALSE(d.next().has_value());
    } else if (d.mid_frame()) {
      ++torn;  // truncation landed mid-frame: recoverable, not hostile
    }
    // The cap bounds payload allocation no matter what the header claimed.
    EXPECT_LE(d.buffer_capacity(), kCap * 2);
  }
  // The seeded damage mix must actually exercise both outcomes.
  EXPECT_GT(poisoned, 0);
  EXPECT_GT(torn, 0);
}

TEST(FuzzIo, FrameLengthPrefixLiesNeverAllocate) {
  namespace sv = commscope::serve;
  constexpr std::size_t kCap = 1024;
  cs::SplitMix64 rng(0x11e5);
  for (int i = 0; i < kIterations; ++i) {
    // Hand-forge a header whose length field lies: up to 4 GiB claimed
    // against a 1 KiB cap.
    std::string f = sv::encode_frame(sv::FrameType::kEpochs, "x");
    const std::uint64_t lie = rng.next_below(0xffffffffull);
    f[8] = static_cast<char>(lie & 0xff);
    f[9] = static_cast<char>((lie >> 8) & 0xff);
    f[10] = static_cast<char>((lie >> 16) & 0xff);
    f[11] = static_cast<char>((lie >> 24) & 0xff);
    sv::FrameDecoder d(kCap);
    (void)d.feed(f.data(), f.size());
    EXPECT_LE(d.buffer_capacity(), kCap * 2);
    if (lie == 0 || lie > kCap) {
      EXPECT_TRUE(d.poisoned());
      EXPECT_TRUE(d.error() == sv::FrameError::kOversize ||
                  d.error() == sv::FrameError::kEmptyPayload);
    }
  }
}

TEST(FuzzIo, PureGarbageStreamsPoisonAsBadMagic) {
  namespace sv = commscope::serve;
  cs::SplitMix64 rng(0xbadbeef);
  for (int i = 0; i < 32; ++i) {
    std::string junk;
    const std::size_t len = 1 + rng.next_below(512);
    for (std::size_t k = 0; k < len; ++k) {
      junk.push_back(static_cast<char>(rng.next_below(256)));
    }
    sv::FrameDecoder d(1024);
    if (!d.feed(junk.data(), junk.size())) {
      EXPECT_NE(d.error(), sv::FrameError::kNone);
    }
    EXPECT_LE(d.buffer_capacity(), std::size_t{2048});
  }
}

TEST(FuzzIo, UndamagedFrameStreamStillDecodes) {
  namespace sv = commscope::serve;
  const std::string s = valid_frame_stream();
  sv::FrameDecoder d;
  ASSERT_TRUE(d.feed(s.data(), s.size()));
  int frames = 0;
  while (d.next().has_value()) ++frames;
  EXPECT_EQ(frames, 3);
}

TEST(FuzzIo, UndamagedFilesStillParse) {
  std::stringstream m(valid_matrix_file());
  EXPECT_EQ(cc::read_matrix(m).size(), 6);
  std::stringstream t(valid_trace_file());
  EXPECT_FALSE(ci::read_trace(t).empty());
  EXPECT_EQ(cr::parse_checkpoint_text(valid_checkpoint_file()).threads, 4);
}

// --- serve WAL + snapshot (the durability layer) ----------------------------
// The journal's threat model matches the frame decoder's: after a crash the
// WAL and snapshot on disk are arbitrary bytes. Recovery must either yield a
// CRC-validated prefix (WAL) or reject the whole image (snapshot) — never
// crash, never allocate what a length prefix merely claims.

namespace {

namespace sv = commscope::serve;
namespace core = commscope::core;

core::EpochTimeline tiny_timeline(std::uint64_t first_index, int epochs) {
  core::EpochTimeline t;
  t.threads = 4;
  for (int i = 0; i < epochs; ++i) {
    core::EpochSample e;
    e.index = first_index + static_cast<std::uint64_t>(i);
    e.reason = core::EpochSeal::kAccesses;
    core::EpochCell c;
    c.producer = 0;
    c.consumer = 1;
    c.bytes = 64 + static_cast<std::uint64_t>(i);
    e.cells.push_back(c);
    e.bytes = c.bytes;
    t.epochs.push_back(e);
    ++t.sealed;
  }
  return t;
}

std::string epochs_payload(std::uint64_t session,
                           const core::EpochTimeline& t) {
  std::ostringstream os;
  commscope::core::write_epochs(os, t);
  return "session " + std::to_string(session) + "\n" + os.str();
}

std::vector<sv::WalRecord> valid_wal_records() {
  std::vector<sv::WalRecord> r;
  r.push_back({1, sv::WalRecordType::kHello, "session 7 threads 4"});
  r.push_back({2, sv::WalRecordType::kEpochs,
               epochs_payload(7, tiny_timeline(0, 3))});
  r.push_back({3, sv::WalRecordType::kEpochs,
               epochs_payload(7, tiny_timeline(3, 2))});
  r.push_back({4, sv::WalRecordType::kSeal, "session 7"});
  return r;
}

std::string wal_image(const std::vector<sv::WalRecord>& records) {
  std::string image;
  for (const sv::WalRecord& r : records) {
    image += sv::encode_wal_record(r.type, r.lsn, r.payload);
  }
  return image;
}

std::string valid_snapshot() {
  commscope::support::MemoryTracker tracker;
  std::map<std::uint64_t, sv::Session> sessions;
  sv::Session s;
  s.id = 7;
  s.threads = 4;
  s.seen = {0, 1, 2, 3, 4};
  s.epochs_merged = 5;
  sessions.emplace(7, std::move(s));
  sv::Aggregate agg(8, &tracker);
  const core::EpochTimeline t = tiny_timeline(0, 5);
  for (const auto& e : t.epochs) agg.merge(t, e);
  return sv::serialize_serve_state(sessions, agg, 42);
}

/// Runs restore_serve_state on hostile text; true iff it threw cleanly.
bool snapshot_rejected(const std::string& text) {
  commscope::support::MemoryTracker tracker;
  std::map<std::uint64_t, sv::Session> sessions;
  sv::Aggregate agg(8, &tracker);
  std::uint64_t lsn = 0;
  try {
    sv::restore_serve_state(text, sessions, agg, lsn, &tracker);
  } catch (const std::runtime_error&) {
    return true;
  }
  return false;
}

}  // namespace

TEST(FuzzIo, DamagedWalImagesYieldValidatedPrefixNeverCrash) {
  const std::vector<sv::WalRecord> originals = valid_wal_records();
  const std::string image = wal_image(originals);
  cs::SplitMix64 rng(0x5eed0a11);
  for (int i = 0; i < kIterations; ++i) {
    const std::string hostile = damage(image, rng);
    sv::WalReader reader(hostile, sv::kMaxWalPayload);
    std::vector<sv::WalRecord> got;
    while (auto r = reader.next()) got.push_back(std::move(*r));
    // Single-byte damage (or truncation) at byte P cannot forge a CRC, so
    // everything the reader yields must be an exact prefix of the
    // originals; the reader stops with provenance at the damage.
    ASSERT_LE(got.size(), originals.size());
    for (std::size_t k = 0; k < got.size(); ++k) {
      EXPECT_EQ(got[k].lsn, originals[k].lsn);
      EXPECT_EQ(static_cast<int>(got[k].type),
                static_cast<int>(originals[k].type));
      EXPECT_EQ(got[k].payload, originals[k].payload);
    }
    if (got.size() < originals.size()) {
      EXPECT_NE(reader.stop(), sv::WalStop::kClean);
      EXPECT_NE(reader.stop_reason()[0], '\0');
    }
    EXPECT_LE(reader.consumed(), hostile.size());
  }
}

TEST(FuzzIo, WalLengthPrefixLiesNeverOverAllocate) {
  // A header may claim any payload length; the reader must refuse claims
  // past its cap (and zero-length claims) *before* allocating or scanning.
  std::string lie = sv::encode_wal_record(sv::WalRecordType::kEpochs, 1,
                                          "short payload");
  lie[16] = static_cast<char>(0xff);  // payload_len -> ~4 GiB
  lie[17] = static_cast<char>(0xff);
  lie[18] = static_cast<char>(0xff);
  lie[19] = static_cast<char>(0x7f);
  {
    sv::WalReader reader(lie, 4096);
    EXPECT_FALSE(reader.next().has_value());
    EXPECT_EQ(reader.stop(), sv::WalStop::kBad);
  }
  {
    // Zero-length claim: the journal never writes empty payloads, so this
    // is a lie by construction, not a torn tail.
    const std::string zero =
        sv::encode_wal_record(sv::WalRecordType::kHello, 1, "x");
    std::string forged = zero;
    forged[16] = 0;
    sv::WalReader reader(forged, 4096);
    EXPECT_FALSE(reader.next().has_value());
    EXPECT_EQ(reader.stop(), sv::WalStop::kBad);
  }
  {
    // A length claim larger than the remaining bytes is indistinguishable
    // from a kill -9 mid-write: torn, not bad — the recovered prefix
    // before it still counts.
    const std::string rec =
        sv::encode_wal_record(sv::WalRecordType::kHello, 1, "session 1");
    sv::WalReader reader(std::string_view(rec).substr(0, rec.size() - 3),
                         4096);
    EXPECT_FALSE(reader.next().has_value());
    EXPECT_EQ(reader.stop(), sv::WalStop::kTorn);
  }
}

TEST(FuzzIo, DuplicatedAndReorderedWalRecordsMergeExactlyOnce) {
  // Replay is semantic, not positional: duplicated records dedupe through
  // the session ledger, records for sessions that never said hello are
  // skipped with provenance, and the rebuilt aggregate matches the
  // exactly-once merge. This is the crafted-WAL (not just torn-WAL) case.
  namespace core = commscope::core;
  const std::string dir = "/tmp/cs_fuzz_wal_" + std::to_string(::getpid());
  ::mkdir(dir.c_str(), 0777);
  const core::EpochTimeline t1 = tiny_timeline(0, 3);
  const core::EpochTimeline t2 = tiny_timeline(3, 2);
  std::vector<sv::WalRecord> records;
  records.push_back({1, sv::WalRecordType::kHello, "session 7 threads 4"});
  records.push_back({2, sv::WalRecordType::kEpochs, epochs_payload(7, t1)});
  records.push_back({3, sv::WalRecordType::kEpochs, epochs_payload(7, t1)});
  records.push_back({4, sv::WalRecordType::kSeal, "session 99"});  // unknown
  records.push_back({5, sv::WalRecordType::kEpochs, epochs_payload(42, t2)});
  records.push_back({6, sv::WalRecordType::kEpochs, epochs_payload(7, t2)});
  {
    std::ofstream wal(dir + "/wal.log", std::ios::binary | std::ios::trunc);
    const std::string image = wal_image(records);
    wal.write(image.data(), static_cast<std::streamsize>(image.size()));
  }
  std::remove((dir + "/snapshot.commscope").c_str());

  sv::ServeOptions o;
  o.socket_path = dir + "/sock";
  o.state_dir = dir;
  sv::ServeServer server(o);
  ASSERT_TRUE(server.open()) << server.last_error();
  const sv::ServeStats st = server.snapshot();
  EXPECT_EQ(st.recovery_records, 6u);
  EXPECT_EQ(st.recovered_epochs, 5u);   // 3 + 2, duplicates absorbed
  EXPECT_GE(st.recovery_skipped, 1u);   // session 42 never said hello
  core::Matrix expected = t1.total();
  expected += t2.total();
  EXPECT_TRUE(server.merged_matrix() == expected);
}

TEST(FuzzIo, DamagedSnapshotsAlwaysThrowCleanly) {
  const std::string original = valid_snapshot();
  cs::SplitMix64 rng(0x5a55a55a);
  int rejected = 0;
  for (int i = 0; i < kIterations; ++i) {
    if (snapshot_rejected(damage(original, rng))) ++rejected;
  }
  // The CRC trailer covers the whole image: every damaged variant rejects.
  EXPECT_EQ(rejected, kIterations);
}

TEST(FuzzIo, CrcValidButHostileSnapshotsRejectBeforeAllocation) {
  // An attacker (or a bad disk plus luck) can produce a snapshot whose CRC
  // is self-consistent but whose counts lie. Every cap must trip before
  // the allocation it guards.
  const auto forge = [](const std::string& body) {
    return commscope::support::with_crc_trailer(std::string(body));
  };
  // Claims 2^20 sessions.
  EXPECT_TRUE(snapshot_rejected(
      forge("commscope-serve-snapshot 1\nlsn 0\nsessions 1048576\n")));
  // One session claiming a 999-million-entry dedupe ledger.
  EXPECT_TRUE(snapshot_rejected(forge(
      "commscope-serve-snapshot 1\nlsn 0\nsessions 1\n"
      "session 7 threads 4 state active merged 0 deduped 0 seen 999000000\n")));
  // Zero threads.
  EXPECT_TRUE(snapshot_rejected(forge(
      "commscope-serve-snapshot 1\nlsn 0\nsessions 1\n"
      "session 7 threads 0 state active merged 0 deduped 0 seen 0\n")));
  // Aggregate claiming a 100k-thread dense matrix.
  EXPECT_TRUE(snapshot_rejected(forge(
      "commscope-serve-snapshot 1\nlsn 0\nsessions 0\n"
      "aggregate threads 100000 sealed 0 dropped 0 labels 0 ring 0\n"
      "cells\n")));
  // Truncated: sessions promised but absent.
  EXPECT_TRUE(snapshot_rejected(
      forge("commscope-serve-snapshot 1\nlsn 0\nsessions 3\n")));
  // Wrong version.
  EXPECT_TRUE(snapshot_rejected(
      forge("commscope-serve-snapshot 2\nlsn 0\nsessions 0\n")));
  // And the control: the untampered image restores.
  EXPECT_FALSE(snapshot_rejected(valid_snapshot()));
}
