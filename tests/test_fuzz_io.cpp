// Fuzz-style robustness tests for the text-format loaders.
//
// Every loader treats its input as hostile: seeded random byte flips and
// truncations of valid matrix, trace and checkpoint files must surface as a
// clean std::runtime_error — never a crash, hang, or silently-garbage
// result. Deterministic (support::SplitMix64 with fixed seeds) so any
// failure replays identically.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>

#include "core/matrix_io.hpp"
#include "core/profiler.hpp"
#include "instrument/loop_registry.hpp"
#include "instrument/trace.hpp"
#include "resilience/checkpoint.hpp"
#include "serve/frame.hpp"
#include "support/rng.hpp"

namespace cc = commscope::core;
namespace ci = commscope::instrument;
namespace cr = commscope::resilience;
namespace cs = commscope::support;

namespace {

constexpr int kIterations = 200;

std::string valid_matrix_file() {
  cc::Matrix m(6);
  std::uint64_t v = 1;
  for (int p = 0; p < 6; ++p) {
    for (int c = 0; c < 6; ++c) m.at(p, c) = (v++ * 2654435761u) % 100000;
  }
  std::stringstream ss;
  cc::write_matrix(ss, m);
  return ss.str();
}

std::string valid_trace_file() {
  const ci::LoopId id =
      ci::LoopRegistry::instance().declare("test_fuzz_io", "loop");
  ci::TraceRecorder rec;
  rec.on_thread_begin(0);
  rec.on_thread_begin(1);
  rec.on_loop_enter(0, id);
  for (int i = 0; i < 40; ++i) {
    rec.on_access(0, 0x1000 + static_cast<std::uintptr_t>(i) * 8, 8,
                  ci::AccessKind::kWrite);
    rec.on_access(1, 0x1000 + static_cast<std::uintptr_t>(i) * 8, 8,
                  ci::AccessKind::kRead);
  }
  rec.on_loop_exit(0);
  std::stringstream ss;
  ci::write_trace(ss, rec.events());
  return ss.str();
}

std::string valid_checkpoint_file() {
  cc::ProfilerOptions o;
  o.max_threads = 4;
  cc::Profiler prof(o);
  prof.on_thread_begin(0);
  prof.on_thread_begin(1);
  for (int i = 0; i < 20; ++i) {
    prof.on_access(0, 0x2000 + static_cast<std::uintptr_t>(i) * 8, 8,
                   ci::AccessKind::kWrite);
    prof.on_access(1, 0x2000 + static_cast<std::uintptr_t>(i) * 8, 8,
                   ci::AccessKind::kRead);
  }
  cr::CheckpointMeta meta;
  meta.events = 80;
  return serialize_checkpoint(prof, meta, prof.stats());
}

/// Flips one random byte (possibly to an arbitrary value) or truncates at a
/// random position, driven by `rng`.
std::string damage(const std::string& original, cs::SplitMix64& rng) {
  std::string text = original;
  if (rng.next_below(4) == 0) {
    return text.substr(0, rng.next_below(text.size()));
  }
  const std::size_t pos = static_cast<std::size_t>(rng.next_below(text.size()));
  const char replacement = static_cast<char>(rng.next_below(256));
  if (text[pos] == replacement) {
    text[pos] = static_cast<char>(replacement ^ 0x5a);
  } else {
    text[pos] = replacement;
  }
  return text;
}

}  // namespace

TEST(FuzzIo, DamagedMatrixFilesAlwaysThrowCleanly) {
  const std::string original = valid_matrix_file();
  cs::SplitMix64 rng(0xfadedbee);
  int rejected = 0;
  for (int i = 0; i < kIterations; ++i) {
    std::stringstream ss(damage(original, rng));
    try {
      (void)cc::read_matrix(ss);
    } catch (const std::runtime_error&) {
      ++rejected;
    }
    // No other exception type and no crash: anything else fails the test.
  }
  // Version-2 files carry a CRC over the whole payload, so *every* damaged
  // variant must be rejected.
  EXPECT_EQ(rejected, kIterations);
}

TEST(FuzzIo, DamagedTraceFilesNeverCrash) {
  const std::string original = valid_trace_file();
  cs::SplitMix64 rng(0x7e57ab1e);
  int rejected = 0;
  for (int i = 0; i < kIterations; ++i) {
    std::stringstream ss(damage(original, rng));
    try {
      (void)ci::read_trace(ss);
    } catch (const std::runtime_error&) {
      ++rejected;
    }
  }
  EXPECT_EQ(rejected, kIterations);
}

TEST(FuzzIo, DamagedCheckpointFilesAlwaysThrowCleanly) {
  const std::string original = valid_checkpoint_file();
  cs::SplitMix64 rng(0xc0ffee);
  int rejected = 0;
  for (int i = 0; i < kIterations; ++i) {
    try {
      (void)cr::parse_checkpoint_text(damage(original, rng));
    } catch (const std::runtime_error&) {
      ++rejected;
    }
  }
  EXPECT_EQ(rejected, kIterations);
}

// --- serve wire-frame parser -----------------------------------------------
// The daemon's FrameDecoder sits on a public socket, so its threat model is
// harsher than the file loaders': arbitrary bytes, length-prefix lies,
// CRC bitflips and concatenated garbage must all end in a *poisoned* decoder
// (counted, provenance-typed) with the payload buffer never growing past the
// declared cap — no exception, no crash, no allocation amplification.

namespace {

std::string valid_frame_stream() {
  namespace sv = commscope::serve;
  std::string s;
  s += sv::encode_frame(sv::FrameType::kHello,
                        "commscope-hello 1 session 99 threads 4");
  s += sv::encode_frame(sv::FrameType::kEpochs,
                        std::string(300, 'e') + " epoch document body");
  s += sv::encode_frame(sv::FrameType::kHeartbeat, {});
  return s;
}

}  // namespace

TEST(FuzzIo, DamagedFrameStreamsPoisonOrTruncateNeverCrash) {
  namespace sv = commscope::serve;
  const std::string original = valid_frame_stream();
  constexpr std::size_t kCap = 4096;
  cs::SplitMix64 rng(0xf4a3eD);
  int poisoned = 0;
  int torn = 0;
  for (int i = 0; i < kIterations; ++i) {
    const std::string text = damage(original, rng);
    sv::FrameDecoder d(kCap);
    const bool ok = d.feed(text.data(), text.size());
    while (d.next().has_value()) {
    }
    if (!ok) {
      // Every poisoning carries a typed reason, and a poisoned decoder
      // stays poisoned even when fed a pristine frame afterwards.
      ++poisoned;
      EXPECT_NE(d.error(), sv::FrameError::kNone);
      const std::string fresh = sv::encode_frame(sv::FrameType::kBye, {});
      EXPECT_FALSE(d.feed(fresh.data(), fresh.size()));
      EXPECT_FALSE(d.next().has_value());
    } else if (d.mid_frame()) {
      ++torn;  // truncation landed mid-frame: recoverable, not hostile
    }
    // The cap bounds payload allocation no matter what the header claimed.
    EXPECT_LE(d.buffer_capacity(), kCap * 2);
  }
  // The seeded damage mix must actually exercise both outcomes.
  EXPECT_GT(poisoned, 0);
  EXPECT_GT(torn, 0);
}

TEST(FuzzIo, FrameLengthPrefixLiesNeverAllocate) {
  namespace sv = commscope::serve;
  constexpr std::size_t kCap = 1024;
  cs::SplitMix64 rng(0x11e5);
  for (int i = 0; i < kIterations; ++i) {
    // Hand-forge a header whose length field lies: up to 4 GiB claimed
    // against a 1 KiB cap.
    std::string f = sv::encode_frame(sv::FrameType::kEpochs, "x");
    const std::uint64_t lie = rng.next_below(0xffffffffull);
    f[8] = static_cast<char>(lie & 0xff);
    f[9] = static_cast<char>((lie >> 8) & 0xff);
    f[10] = static_cast<char>((lie >> 16) & 0xff);
    f[11] = static_cast<char>((lie >> 24) & 0xff);
    sv::FrameDecoder d(kCap);
    (void)d.feed(f.data(), f.size());
    EXPECT_LE(d.buffer_capacity(), kCap * 2);
    if (lie == 0 || lie > kCap) {
      EXPECT_TRUE(d.poisoned());
      EXPECT_TRUE(d.error() == sv::FrameError::kOversize ||
                  d.error() == sv::FrameError::kEmptyPayload);
    }
  }
}

TEST(FuzzIo, PureGarbageStreamsPoisonAsBadMagic) {
  namespace sv = commscope::serve;
  cs::SplitMix64 rng(0xbadbeef);
  for (int i = 0; i < 32; ++i) {
    std::string junk;
    const std::size_t len = 1 + rng.next_below(512);
    for (std::size_t k = 0; k < len; ++k) {
      junk.push_back(static_cast<char>(rng.next_below(256)));
    }
    sv::FrameDecoder d(1024);
    if (!d.feed(junk.data(), junk.size())) {
      EXPECT_NE(d.error(), sv::FrameError::kNone);
    }
    EXPECT_LE(d.buffer_capacity(), std::size_t{2048});
  }
}

TEST(FuzzIo, UndamagedFrameStreamStillDecodes) {
  namespace sv = commscope::serve;
  const std::string s = valid_frame_stream();
  sv::FrameDecoder d;
  ASSERT_TRUE(d.feed(s.data(), s.size()));
  int frames = 0;
  while (d.next().has_value()) ++frames;
  EXPECT_EQ(frames, 3);
}

TEST(FuzzIo, UndamagedFilesStillParse) {
  std::stringstream m(valid_matrix_file());
  EXPECT_EQ(cc::read_matrix(m).size(), 6);
  std::stringstream t(valid_trace_file());
  EXPECT_FALSE(ci::read_trace(t).empty());
  EXPECT_EQ(cr::parse_checkpoint_text(valid_checkpoint_file()).threads, 4);
}
