// Hardware counter attribution suite: the PerfDelta data model, the v2
// epoch-file extension (round-trip, counterless back-compat, hostile-input
// rejection), the engine's graceful degradation under the perf-open-fail
// fault point, the serve aggregate's wire round-trip of per-epoch counters,
// and the seeded differential proving that enabling counters never perturbs
// the communication matrices.
//
// Engine tests are written against the degradation contract, not the host's
// PMU: with open_fail_from = 1 every perf_event_open refuses, which is
// byte-identical to running on a perf-less machine — so they pass in
// containers and on locked-down kernels. The one test that wants real
// counters guards every assertion behind available().
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "core/epoch_io.hpp"
#include "core/flight_recorder.hpp"
#include "core/profiler.hpp"
#include "instrument/loop_registry.hpp"
#include "serve/session.hpp"
#include "support/rng.hpp"
#include "support/textio.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/perf_counters.hpp"

namespace cc = commscope::core;
namespace ci = commscope::instrument;
namespace cs = commscope::support;
namespace csv = commscope::serve;
namespace ctl = commscope::telemetry;

namespace {

ctl::PerfDelta make_delta(std::uint64_t base, std::uint8_t present,
                          bool mux = false) {
  ctl::PerfDelta d;
  d.cycles = base * 1000;
  d.instructions = base * 900;
  d.llc_misses = base * 10;
  d.hitm = base;
  d.present = present;
  d.multiplexed = mux;
  return d;
}

cc::EpochTimeline make_timeline(bool with_perf) {
  cc::EpochTimeline t;
  t.threads = 4;
  t.sealed = 2;
  t.dropped = 0;
  t.loop_labels.emplace_back(7, "lu:k-loop");
  for (std::uint64_t i = 1; i <= 2; ++i) {
    cc::EpochSample e;
    e.index = i;
    e.first_access = i * 100;
    e.last_access = i * 100 + 100;
    e.dependencies = 5 * i;
    e.bytes = 64 * i;
    e.reason = i == 2 ? cc::EpochSeal::kFinalize : cc::EpochSeal::kAccesses;
    e.cells.push_back(cc::EpochCell{0, 1, 48 * i});
    e.loops.push_back(cc::EpochLoopShare{7, 48 * i});
    if (with_perf) {
      e.perf = make_delta(i, ctl::kPerfPresentAll, /*mux=*/i == 2);
    }
    t.epochs.push_back(e);
  }
  return t;
}

std::string serialize(const cc::EpochTimeline& t) {
  std::ostringstream os;
  cc::write_epochs(os, t);
  return os.str();
}

// --- PerfDelta data model ----------------------------------------------------

TEST(PerfDelta, SinceSaturatesAndIntersectsPresent) {
  ctl::PerfDelta now = make_delta(5, ctl::kPerfCycles | ctl::kPerfLlcMisses);
  ctl::PerfDelta old = make_delta(2, ctl::kPerfCycles | ctl::kPerfHitm);
  const ctl::PerfDelta d = now.since(old);
  EXPECT_EQ(d.cycles, 3000u);
  EXPECT_EQ(d.present, ctl::kPerfCycles);  // intersection
  // Counter went backwards (multiplexing estimator jitter): saturate, not
  // wrap.
  old.cycles = now.cycles + 1;
  EXPECT_EQ(now.since(old).cycles, 0u);
}

TEST(PerfDelta, AccumulateUnionsPresenceAndMux) {
  ctl::PerfDelta sum;
  sum += make_delta(1, ctl::kPerfCycles);
  sum += make_delta(2, ctl::kPerfHitm, /*mux=*/true);
  EXPECT_EQ(sum.present, ctl::kPerfCycles | ctl::kPerfHitm);
  EXPECT_TRUE(sum.multiplexed);
  EXPECT_EQ(sum.hitm, 3u);
  EXPECT_TRUE(sum.any());
  EXPECT_FALSE(ctl::PerfDelta{}.any());
}

// --- epoch_io v2 -------------------------------------------------------------

TEST(PerfEpochIo, V2RoundTripPreservesCounters) {
  const cc::EpochTimeline t = make_timeline(/*with_perf=*/true);
  const std::string text = serialize(t);
  EXPECT_EQ(text.rfind("commscope-epochs 2\n", 0), 0u);
  const cc::EpochTimeline back = cc::read_epochs(std::string_view(text));
  ASSERT_EQ(back.epochs.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(back.epochs[i].perf, t.epochs[i].perf) << "epoch " << i;
  }
}

TEST(PerfEpochIo, CounterlessTimelineStaysVersion1) {
  const cc::EpochTimeline t = make_timeline(/*with_perf=*/false);
  const std::string text = serialize(t);
  // Byte-compat promise: no counters anywhere -> the v1 document old readers
  // already accept, perf token absent.
  EXPECT_EQ(text.rfind("commscope-epochs 1\n", 0), 0u);
  EXPECT_EQ(text.find(" perf "), std::string::npos);
  const cc::EpochTimeline back = cc::read_epochs(std::string_view(text));
  ASSERT_EQ(back.epochs.size(), 2u);
  EXPECT_EQ(back.epochs[0].perf.present, 0u);
  EXPECT_FALSE(back.epochs[0].perf.multiplexed);
}

TEST(PerfEpochIo, MultiplexOnlyEpochStillWritesV2) {
  cc::EpochTimeline t = make_timeline(/*with_perf=*/false);
  t.epochs[0].perf.multiplexed = true;  // scaled-to-zero reading: still
                                        // provenance worth keeping
  const cc::EpochTimeline back =
      cc::read_epochs(std::string_view(serialize(t)));
  EXPECT_TRUE(back.epochs[0].perf.multiplexed);
}

TEST(PerfEpochIo, RejectsOutOfRangePresentMask) {
  const cc::EpochTimeline t = make_timeline(/*with_perf=*/true);
  std::string text = serialize(t);
  const std::size_t pos = text.find(" perf 15 ");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 9, " perf 16 ");  // present > 0xF: no such slot
  // Re-CRC so the failure exercised is the semantic cap, not the checksum.
  const std::size_t crc = text.rfind("crc32 ");
  text = cs::with_crc_trailer(text.substr(0, crc));
  EXPECT_THROW((void)cc::read_epochs(std::string_view(text)),
               std::runtime_error);
}

TEST(PerfEpochIo, RejectsTruncatedCounterBlock) {
  const cc::EpochTimeline t = make_timeline(/*with_perf=*/true);
  std::string text = serialize(t);
  // Drop the last counter field of the first epoch's perf block.
  const std::size_t pos = text.find(" perf ");
  ASSERT_NE(pos, std::string::npos);
  const std::size_t eol = text.find('\n', pos);
  std::size_t cut = text.rfind(' ', eol);
  text.erase(cut, eol - cut);
  const std::size_t crc = text.rfind("crc32 ");
  text = cs::with_crc_trailer(text.substr(0, crc));
  EXPECT_THROW((void)cc::read_epochs(std::string_view(text)),
               std::runtime_error);
}

TEST(PerfEpochIo, RejectsBitflippedCounterBlock) {
  const cc::EpochTimeline t = make_timeline(/*with_perf=*/true);
  std::string text = serialize(t);
  const std::size_t pos = text.find(" perf ");
  ASSERT_NE(pos, std::string::npos);
  text[pos + 7] ^= 0x01;  // corrupt without re-CRCing: trailer must catch it
  EXPECT_THROW((void)cc::read_epochs(std::string_view(text)),
               std::runtime_error);
}

// --- serve aggregate wire/WAL round-trip ------------------------------------

TEST(PerfServe, AggregateSerializeRestoreKeepsCounters) {
  const cc::EpochTimeline src = make_timeline(/*with_perf=*/true);
  csv::Aggregate agg(8, nullptr);
  for (const cc::EpochSample& e : src.epochs) agg.merge(src, e);

  std::string blob;
  agg.serialize(blob);
  csv::Aggregate back(8, nullptr);
  cs::TokenScanner sc(blob, "test");
  back.restore(sc);
  const cc::EpochTimeline out = back.timeline();
  ASSERT_EQ(out.epochs.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(out.epochs[i].perf, src.epochs[i].perf) << "epoch " << i;
  }
}

TEST(PerfServe, AggregateRestoresCounterlessSnapshots) {
  // A snapshot written before the perf extension has no perf tokens; the
  // reader must accept it unchanged (WAL/snapshot back-compat).
  const cc::EpochTimeline src = make_timeline(/*with_perf=*/false);
  csv::Aggregate agg(8, nullptr);
  for (const cc::EpochSample& e : src.epochs) agg.merge(src, e);
  std::string blob;
  agg.serialize(blob);
  EXPECT_EQ(blob.find(" perf "), std::string::npos);
  csv::Aggregate back(8, nullptr);
  cs::TokenScanner sc(blob, "test");
  back.restore(sc);
  EXPECT_EQ(back.timeline().epochs.at(0).perf.present, 0u);
}

// --- engine degradation ------------------------------------------------------

#if !defined(COMMSCOPE_TELEMETRY_DISABLED)

TEST(PerfEngine, InjectedOpenFailureDegradesCleanly) {
  const std::uint64_t unavailable_before =
      ctl::counter("perf.unavailable").value();
  ctl::PerfCountersOptions o;
  o.max_threads = 2;
  o.open_fail_from = 1;  // every open refuses: a host with no PMU
  ctl::PerfCounters pc(o);
  pc.attach_current_thread(0);
  EXPECT_FALSE(pc.available());
  EXPECT_EQ(pc.hitm_source(), ctl::HitmSource::kNone);
  EXPECT_FALSE(pc.read_thread(0).any());
  EXPECT_FALSE(pc.total().any());
  EXPECT_FALSE(pc.window_delta().any());
  // Provenance: each refused slot counted (4 slots on thread 0).
  EXPECT_GE(ctl::counter("perf.unavailable").value(), unavailable_before + 4);
}

TEST(PerfEngine, OutOfRangeTidIgnored) {
  ctl::PerfCountersOptions o;
  o.max_threads = 1;
  o.open_fail_from = 1;
  ctl::PerfCounters pc(o);
  pc.attach_current_thread(-1);
  pc.attach_current_thread(7);
  EXPECT_FALSE(pc.read_thread(7).any());
  EXPECT_FALSE(pc.available());
}

TEST(PerfEngine, ChargesTrackerForSlotTable) {
  commscope::support::MemoryTracker mem;
  {
    ctl::PerfCountersOptions o;
    o.max_threads = 8;
    o.open_fail_from = 1;
    ctl::PerfCounters pc(o, &mem);
    EXPECT_GT(mem.current(), 0u);
  }
  EXPECT_EQ(mem.current(), 0u);
}

TEST(PerfEngine, RealCountersWhenHostAllows) {
  // On hosts where perf works this exercises the live path; where it does
  // not (CI containers, perf_event_paranoid), the engine must degrade and
  // every assertion below is skipped — that degradation IS the contract.
  ctl::PerfCountersOptions o;
  o.max_threads = 1;
  ctl::PerfCounters pc(o);
  pc.attach_current_thread(0);
  if (!pc.available()) GTEST_SKIP() << "perf unavailable on this host";
  volatile std::uint64_t sink = 0;
  for (int i = 0; i < 200000; ++i) sink += static_cast<std::uint64_t>(i);
  const ctl::PerfDelta a = pc.read_thread(0);
  EXPECT_TRUE(a.any());
  for (int i = 0; i < 200000; ++i) sink += static_cast<std::uint64_t>(i);
  const ctl::PerfDelta b = pc.read_thread(0);
  // Cumulative readings are monotonic for every present slot.
  const ctl::PerfDelta d = b.since(a);
  if ((d.present & ctl::kPerfInstructions) != 0) {
    EXPECT_GT(b.instructions, 0u);
  }
  if ((d.present & ctl::kPerfCycles) != 0) {
    EXPECT_GE(b.cycles, a.cycles);
  }
}

// --- seeded differential: counters must never skew the matrices --------------

void drive(cc::Profiler& p, std::uint64_t seed) {
  constexpr int kThreads = 4;
  // One shared id across every drive() call: declare() mints a fresh id per
  // call, and the differential needs both runs to tag the same loop.
  static const ci::LoopId loop =
      ci::LoopRegistry::instance().declare("perf_diff", "body");
  for (int t = 0; t < kThreads; ++t) p.on_thread_begin(t);
  cs::SplitMix64 rng(seed);
  for (int t = 0; t < kThreads; ++t) p.on_loop_enter(t, loop);
  for (int i = 0; i < 5000; ++i) {
    const int tid = static_cast<int>(rng.next_below(kThreads));
    const std::uintptr_t addr = 0x1000 + 8 * rng.next_below(512);
    const bool write = rng.next_below(3) == 0;
    p.on_access(tid, addr, 8,
                write ? ci::AccessKind::kWrite : ci::AccessKind::kRead);
  }
  for (int t = 0; t < kThreads; ++t) p.on_loop_exit(t);
  p.finalize();
}

TEST(PerfDifferential, MatricesBitIdenticalWithCountersOnAndOff) {
  cc::ProfilerOptions base;
  base.max_threads = 4;
  base.signature_slots = 1u << 14;
  base.epoch_accesses = 1024;

  cc::ProfilerOptions with_perf = base;
  with_perf.perf = true;

  cc::Profiler off(base);
  cc::Profiler on(with_perf);
  drive(off, 0x5eed);
  drive(on, 0x5eed);

  // Whole-program matrix: bit-identical.
  const cc::Matrix moff = off.communication_matrix();
  const cc::Matrix mon = on.communication_matrix();
  ASSERT_EQ(moff.size(), mon.size());
  for (int p = 0; p < moff.size(); ++p) {
    for (int c = 0; c < moff.size(); ++c) {
      EXPECT_EQ(moff.at(p, c), mon.at(p, c)) << p << "->" << c;
    }
  }

  // Epoch timelines: identical in every field except the perf block itself.
  cc::EpochTimeline toff = off.epoch_timeline();
  cc::EpochTimeline ton = on.epoch_timeline();
  ASSERT_EQ(toff.epochs.size(), ton.epochs.size());
  for (std::size_t i = 0; i < toff.epochs.size(); ++i) {
    cc::EpochSample a = toff.epochs[i];
    cc::EpochSample b = ton.epochs[i];
    a.perf = ctl::PerfDelta{};
    b.perf = ctl::PerfDelta{};
    EXPECT_EQ(a, b) << "epoch " << i;
  }
}

TEST(PerfDifferential, DegradedEngineMatchesDisabledEngine) {
  // perf requested but every open refused (the no-PMU CI environment):
  // matrices and epochs must still match a perf-less run bit for bit, and
  // the report must carry provenance, not zeros.
  cc::ProfilerOptions base;
  base.max_threads = 4;
  base.signature_slots = 1u << 14;
  base.epoch_accesses = 1024;
  cc::ProfilerOptions degraded = base;
  degraded.perf = true;
  degraded.perf_open_fail_from = 1;

  cc::Profiler off(base);
  cc::Profiler on(degraded);
  drive(off, 0xfeed);
  drive(on, 0xfeed);

  ASSERT_NE(on.perf_counters(), nullptr);
  EXPECT_FALSE(on.perf_counters()->available());
  EXPECT_FALSE(on.regions().root().aggregate_perf().any());

  const cc::Matrix moff = off.communication_matrix();
  const cc::Matrix mon = on.communication_matrix();
  for (int p = 0; p < moff.size(); ++p) {
    for (int c = 0; c < moff.size(); ++c) {
      EXPECT_EQ(moff.at(p, c), mon.at(p, c));
    }
  }
  const cc::EpochTimeline ton = on.epoch_timeline();
  for (const cc::EpochSample& e : ton.epochs) {
    EXPECT_FALSE(e.perf.any());  // degraded engine never fabricates deltas
  }
}

#endif  // !COMMSCOPE_TELEMETRY_DISABLED

}  // namespace
