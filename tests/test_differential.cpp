// Differential verification of the batched ingest pipeline.
//
// Randomized seeded traces (varying thread counts, loop nests and run
// lengths, including RAW pairs that straddle micro-batch flush boundaries)
// are replayed through the profiler at every batch size and compared:
//
//  * batched vs unbatched SIGNATURE runs must be bit-identical — same
//    whole-program matrix, same per-region direct matrices in preorder, same
//    stats, same phase timeline. The batch layer is a pure relayout of the
//    ingest loop, so any divergence is a bug, not noise.
//  * the same holds for the EXACT backend and for the classified-dependence
//    path (which drain through the generic ingest_one path).
//  * signature vs exact FPR must stay inside the Eq. 2 envelope (see the
//    bound derivation at the FPR test).
//
// Trace shape: threads take turns emitting "runs" of events. Every run ends
// with an explicit on_drain(tid) — the ordering points the harnesses use —
// so the global processing order is identical at every batch size (within a
// run only one thread appends; across runs the drain empties the batch
// before the next thread starts). Runs are longer than the smaller batch
// sizes, so batch-full flushes fire mid-run and cross-thread RAW pairs
// straddle those internal flush boundaries; the final run is deliberately
// left undrained so finalize()'s flush_all() is on the verified path too.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <vector>

#include "core/epoch_io.hpp"
#include "core/matrix_io.hpp"
#include "core/profiler.hpp"
#include "core/region_tree.hpp"
#include "instrument/loop_registry.hpp"
#include "support/rng.hpp"
#include "support/simd.hpp"

namespace cc = commscope::core;
namespace ci = commscope::instrument;
namespace cs = commscope::support;

namespace {

enum class OpKind : std::uint8_t {
  kThreadBegin,
  kLoopEnter,
  kLoopExit,
  kAccess,
  kDrain,
};

struct Op {
  OpKind op;
  int tid = 0;
  ci::LoopId loop = 0;
  std::uintptr_t addr = 0;
  std::uint32_t size = 0;
  ci::AccessKind kind = ci::AccessKind::kRead;
};

struct TraceShape {
  int threads = 4;
  int rounds = 6;       ///< turn-taking rounds; each thread runs once per round
  int max_run = 160;    ///< events per run in [1, max_run]
  int words = 512;      ///< distinct 8-byte words in the synthetic arena
  double write_prob = 0.3;
};

ci::LoopId trace_loop(int i) {
  // Declared once; the registry is a process-wide singleton.
  static const ci::LoopId ids[4] = {
      ci::LoopRegistry::instance().declare("diff", "l0"),
      ci::LoopRegistry::instance().declare("diff", "l1"),
      ci::LoopRegistry::instance().declare("diff", "l2"),
      ci::LoopRegistry::instance().declare("diff", "l3"),
  };
  return ids[i & 3];
}

/// Seeded trace generator. Addresses are synthetic (the detector only hashes
/// them); the shared word pool makes cross-thread RAW pairs common.
std::vector<Op> make_trace(std::uint64_t seed, const TraceShape& shape) {
  cs::SplitMix64 rng(seed);
  std::vector<Op> ops;
  std::vector<int> depth(static_cast<std::size_t>(shape.threads), 0);
  for (int t = 0; t < shape.threads; ++t) {
    ops.push_back({OpKind::kThreadBegin, t});
  }
  for (int round = 0; round < shape.rounds; ++round) {
    for (int t = 0; t < shape.threads; ++t) {
      const int run_len =
          1 + static_cast<int>(rng.next_below(
                  static_cast<std::uint64_t>(shape.max_run)));
      for (int i = 0; i < run_len; ++i) {
        const double roll = rng.next_double();
        if (roll < 0.08 && depth[static_cast<std::size_t>(t)] < 3) {
          Op op{OpKind::kLoopEnter, t};
          op.loop = trace_loop(static_cast<int>(rng.next_below(4)));
          ops.push_back(op);
          ++depth[static_cast<std::size_t>(t)];
        } else if (roll < 0.14 && depth[static_cast<std::size_t>(t)] > 0) {
          ops.push_back({OpKind::kLoopExit, t});
          --depth[static_cast<std::size_t>(t)];
        } else {
          Op op{OpKind::kAccess, t};
          op.addr = 0x100000u +
                    8u * rng.next_below(static_cast<std::uint64_t>(shape.words));
          op.size = (rng.next() & 1) ? 8 : 4;
          op.kind = rng.next_double() < shape.write_prob
                        ? ci::AccessKind::kWrite
                        : ci::AccessKind::kRead;
          ops.push_back(op);
        }
      }
      const bool last_run =
          round == shape.rounds - 1 && t == shape.threads - 1;
      // Every run ends at an ordering point — except the very last, whose
      // partial batch is left for finalize()'s flush_all() to drain.
      if (!last_run) ops.push_back({OpKind::kDrain, t});
    }
  }
  // Close any loops still open so every region sees a balanced enter/exit
  // history (the generator tracks depth, the profiler just replays it).
  for (int t = 0; t < shape.threads; ++t) {
    while (depth[static_cast<std::size_t>(t)] > 0) {
      ops.push_back({OpKind::kLoopExit, t});
      --depth[static_cast<std::size_t>(t)];
    }
  }
  return ops;
}

std::unique_ptr<cc::Profiler> replay(const std::vector<Op>& ops,
                                     cc::ProfilerOptions options) {
  auto prof = std::make_unique<cc::Profiler>(options);
  for (const Op& op : ops) {
    switch (op.op) {
      case OpKind::kThreadBegin: prof->on_thread_begin(op.tid); break;
      case OpKind::kLoopEnter: prof->on_loop_enter(op.tid, op.loop); break;
      case OpKind::kLoopExit: prof->on_loop_exit(op.tid); break;
      case OpKind::kAccess:
        prof->on_access(op.tid, op.addr, op.size, op.kind);
        break;
      case OpKind::kDrain: prof->on_drain(op.tid); break;
    }
  }
  prof->finalize();
  return prof;
}

cc::ProfilerOptions base_options(cc::Backend backend, int threads) {
  cc::ProfilerOptions o;
  o.max_threads = threads;
  o.signature_slots = 1 << 16;
  o.fp_rate = 0.001;
  o.backend = backend;
  o.phase_window_bytes = 4096;  // phase timeline rides along in the diff
  return o;
}

/// Asserts every observable output of `got` equals `want`, cell for cell and
/// node for node.
void expect_identical(const cc::Profiler& want, const cc::Profiler& got,
                      const std::string& context) {
  SCOPED_TRACE(context);
  EXPECT_TRUE(want.communication_matrix() == got.communication_matrix())
      << "whole-program matrix diverged";

  const auto ws = want.stats();
  const auto gs = got.stats();
  EXPECT_EQ(ws.accesses, gs.accesses);
  EXPECT_EQ(ws.reads, gs.reads);
  EXPECT_EQ(ws.writes, gs.writes);
  EXPECT_EQ(ws.dependencies, gs.dependencies);
  EXPECT_EQ(want.dropped_events(), got.dropped_events());

  const auto wd = want.dependence_counts();
  const auto gd = got.dependence_counts();
  EXPECT_EQ(wd.raw, gd.raw);
  EXPECT_EQ(wd.war, gd.war);
  EXPECT_EQ(wd.waw, gd.waw);
  EXPECT_EQ(wd.rar, gd.rar);

  const auto wn = want.regions().preorder();
  const auto gn = got.regions().preorder();
  ASSERT_EQ(wn.size(), gn.size()) << "region tree shape diverged";
  for (std::size_t i = 0; i < wn.size(); ++i) {
    EXPECT_EQ(wn[i]->loop(), gn[i]->loop()) << "node " << i;
    EXPECT_EQ(wn[i]->entries(), gn[i]->entries()) << "node " << i;
    EXPECT_TRUE(wn[i]->direct() == gn[i]->direct())
        << "per-region matrix diverged at preorder node " << i << " ("
        << wn[i]->label() << ")";
  }

  const auto wp = want.phase_timeline();
  const auto gp = got.phase_timeline();
  ASSERT_EQ(wp.size(), gp.size()) << "phase timeline length diverged";
  for (std::size_t i = 0; i < wp.size(); ++i) {
    EXPECT_TRUE(wp[i] == gp[i]) << "phase window " << i;
  }
  EXPECT_EQ(want.phase_window_accesses(), got.phase_window_accesses());
}

std::string case_name(std::uint64_t seed, int threads, std::uint32_t batch) {
  std::ostringstream os;
  os << "seed=" << seed << " threads=" << threads << " batch=" << batch;
  return os.str();
}

}  // namespace

// --- bit-identity ----------------------------------------------------------

TEST(Differential, BatchedSignatureBitIdenticalAcrossBatchSizes) {
  const struct { std::uint64_t seed; int threads; } grid[] = {
      {101, 2}, {202, 4}, {303, 8}, {404, 4},
  };
  const std::uint32_t batches[] = {1, 2, 7, 64, 256};
  for (const auto& g : grid) {
    TraceShape shape;
    shape.threads = g.threads;
    const auto ops = make_trace(g.seed, shape);
    const auto baseline =
        replay(ops, base_options(cc::Backend::kAsymmetricSignature, g.threads));
    // The identity check must not pass vacuously: every generated trace has
    // to exercise cross-thread RAW detection and nested-region attribution.
    ASSERT_GT(baseline->stats().dependencies, 0u);
    ASSERT_GT(baseline->regions().node_count(), 1u);
    for (const std::uint32_t b : batches) {
      auto o = base_options(cc::Backend::kAsymmetricSignature, g.threads);
      o.batch_size = b;
      expect_identical(*baseline, *replay(ops, o),
                       case_name(g.seed, g.threads, b));
    }
  }
}

TEST(Differential, BatchedExactBackendBitIdentical) {
  TraceShape shape;
  const auto ops = make_trace(555, shape);
  const auto baseline =
      replay(ops, base_options(cc::Backend::kExact, shape.threads));
  for (const std::uint32_t b : {3u, 64u, 256u}) {
    auto o = base_options(cc::Backend::kExact, shape.threads);
    o.batch_size = b;
    expect_identical(*baseline, *replay(ops, o),
                     case_name(555, shape.threads, b));
  }
}

TEST(Differential, BatchedClassifiedPathBitIdentical) {
  // classify_dependences drains through the generic ingest path (no
  // hash-ahead fast path); both backends must still be batch-invariant.
  for (const auto backend :
       {cc::Backend::kAsymmetricSignature, cc::Backend::kExact}) {
    TraceShape shape;
    const auto ops = make_trace(777, shape);
    auto base = base_options(backend, shape.threads);
    base.classify_dependences = true;
    const auto baseline = replay(ops, base);
    for (const std::uint32_t b : {5u, 64u}) {
      auto o = base;
      o.batch_size = b;
      expect_identical(*baseline, *replay(ops, o),
                       case_name(777, shape.threads, b));
    }
  }
}

TEST(Differential, SparseRegionMatricesBitIdentical) {
  TraceShape shape;
  const auto ops = make_trace(888, shape);
  auto base = base_options(cc::Backend::kAsymmetricSignature, shape.threads);
  base.sparse_region_matrices = true;
  const auto baseline = replay(ops, base);
  auto o = base;
  o.batch_size = 64;
  expect_identical(*baseline, *replay(ops, o),
                   case_name(888, shape.threads, 64));
}

// --- flight-recorder differential (label: recorder) ------------------------
#if !defined(COMMSCOPE_TELEMETRY_DISABLED)

// The epoch timeline is a sparse re-encoding of the same dependency stream
// the whole-program matrix accumulates: with nothing overwritten out of the
// ring, summing every epoch's delta must reproduce the final dense matrix
// bit for bit.
TEST(Differential, EpochDeltasSumToFinalMatrixBitForBit) {
  for (const std::uint64_t seed : {1111ull, 2222ull}) {
    TraceShape shape;
    const auto ops = make_trace(seed, shape);
    auto o = base_options(cc::Backend::kAsymmetricSignature, shape.threads);
    o.epoch_accesses = 256;            // many seals across the run
    o.epoch_ring = cc::kMaxEpochRing;  // keep every epoch: exact identity
    const auto prof = replay(ops, o);
    ASSERT_GT(prof->stats().dependencies, 0u);
    const cc::EpochTimeline t = prof->epoch_timeline();
    ASSERT_GT(t.epochs.size(), 1u) << "trigger never fired; test is vacuous";
    ASSERT_EQ(t.dropped, 0u);
    EXPECT_TRUE(t.total().trimmed(shape.threads) ==
                prof->communication_matrix().trimmed(shape.threads))
        << "seed " << seed << ": epoch deltas diverged from the final matrix";
  }
}

// Micro-batching is a pure relayout of the ingest loop; with the drain
// points fixed by the trace, epoch boundaries — and therefore the entire
// recorded timeline — must be identical at every batch size.
TEST(Differential, EpochTimelineBitIdenticalAcrossBatchSizes) {
  TraceShape shape;
  const auto ops = make_trace(3333, shape);
  auto base = base_options(cc::Backend::kAsymmetricSignature, shape.threads);
  base.epoch_accesses = 257;  // prime: boundaries land mid-batch everywhere
  base.epoch_ring = cc::kMaxEpochRing;
  const cc::EpochTimeline want = replay(ops, base)->epoch_timeline();
  ASSERT_GT(want.epochs.size(), 1u);
  for (const std::uint32_t b : {1u, 7u, 64u, 256u}) {
    auto o = base;
    o.batch_size = b;
    const cc::EpochTimeline got = replay(ops, o)->epoch_timeline();
    SCOPED_TRACE(case_name(3333, shape.threads, b));
    EXPECT_EQ(got.sealed, want.sealed);
    EXPECT_EQ(got.dropped, want.dropped);
    ASSERT_EQ(got.epochs.size(), want.epochs.size());
    for (std::size_t i = 0; i < want.epochs.size(); ++i) {
      EXPECT_EQ(got.epochs[i], want.epochs[i]) << "epoch " << i;
    }
  }
}

#endif  // !COMMSCOPE_TELEMETRY_DISABLED

// --- cross-ISA determinism (label: differential) ----------------------------
//
// The batched drain dispatches murmur_mix64_batch to an AVX2 kernel when the
// CPU has one. Persisted artifacts (.matrix, .epochs) must not depend on
// that dispatch decision: a trace profiled on an AVX2 machine and the same
// trace profiled with the scalar fallback (COMMSCOPE_NO_SIMD=1, a non-x86
// host, or simd_force_scalar) must serialize to byte-identical files. CI
// runs this suite twice — once dispatched, once under COMMSCOPE_NO_SIMD=1 —
// so the scalar path cannot rot.

namespace {

struct SimdGuard {
  ~SimdGuard() { cs::simd_force_scalar(false); }
};

std::string matrix_bytes(const cc::Profiler& prof) {
  std::ostringstream os;
  cc::write_matrix(os, prof.communication_matrix());
  return os.str();
}

std::string epoch_bytes(const cc::Profiler& prof) {
  std::ostringstream os;
  cc::write_epochs(os, prof.epoch_timeline());
  return os.str();
}

}  // namespace

TEST(Differential, SimdOnOffProducesByteIdenticalMatrixAndEpochFiles) {
  SimdGuard guard;  // never leak the forced-scalar state into other tests
  for (const std::uint64_t seed : {4242ull, 9001ull}) {
    TraceShape shape;
    shape.threads = 8;
    const auto ops = make_trace(seed, shape);
    auto o = base_options(cc::Backend::kAsymmetricSignature, shape.threads);
    o.batch_size = 64;
    o.epoch_accesses = 257;
    o.epoch_ring = cc::kMaxEpochRing;

    cs::simd_force_scalar(false);
    const auto dispatched = replay(ops, o);
    ASSERT_GT(dispatched->stats().dependencies, 0u);
    const std::string matrix_dispatched = matrix_bytes(*dispatched);
    const std::string epochs_dispatched = epoch_bytes(*dispatched);

    cs::simd_force_scalar(true);
    ASSERT_EQ(cs::simd_level(), cs::SimdLevel::kScalar);
    const auto scalar = replay(ops, o);
    const std::string matrix_scalar = matrix_bytes(*scalar);
    const std::string epochs_scalar = epoch_bytes(*scalar);
    cs::simd_force_scalar(false);

    EXPECT_EQ(matrix_dispatched, matrix_scalar)
        << "seed " << seed << ": .matrix bytes depend on SIMD dispatch";
    EXPECT_EQ(epochs_dispatched, epochs_scalar)
        << "seed " << seed << ": .epochs bytes depend on SIMD dispatch";
    expect_identical(*dispatched, *scalar,
                     "simd-on vs simd-off, seed " + std::to_string(seed));
  }
}

TEST(Differential, ScalarForcedBatchedStillMatchesUnbatchedInline) {
  // Close the triangle: forced-scalar batched vs dispatched unbatched. Any
  // kernel-dependence anywhere in the pipeline (hashing, probe positions,
  // slot reduction) would break one leg of it.
  SimdGuard guard;
  TraceShape shape;
  const auto ops = make_trace(6006, shape);
  const auto o = base_options(cc::Backend::kAsymmetricSignature, shape.threads);
  const auto inline_dispatched = replay(ops, o);
  ASSERT_GT(inline_dispatched->stats().dependencies, 0u);
  cs::simd_force_scalar(true);
  auto batched = o;
  batched.batch_size = 64;
  const auto batched_scalar = replay(ops, batched);
  cs::simd_force_scalar(false);
  expect_identical(*inline_dispatched, *batched_scalar,
                   "scalar batched vs dispatched inline");
  EXPECT_EQ(matrix_bytes(*inline_dispatched), matrix_bytes(*batched_scalar));
}

// --- FPR vs exact ----------------------------------------------------------

TEST(Differential, SignatureFprVsExactStaysUnderEq2Bound) {
  // The signature backend diverges from the exact baseline through exactly
  // two mechanisms, both bounded by the Eq. 2 sizing (size_model.hpp):
  //
  //  * bloom false positives on the "a not in read signature" probe SUPPRESS
  //    a dependency (the reader looks already-known). Eq. 2 sizes each slot's
  //    filter so that with t resident readers the per-probe FPR is at most
  //    fp_rate; the expected undercount is <= fp_rate * reads.
  //  * slot aliasing (distinct words hashing to the same slot) can
  //    mis-attribute or double-count a producer. With W words and n slots
  //    the expected number of colliding word pairs is W^2 / (2n) — here
  //    512^2 / (2 * 65536) = 2 — each perturbing at most a handful of edges.
  //
  // The bound below allows 5x the Eq. 2 expectation plus a flat aliasing
  // allowance; the traces are seeded, so the check is deterministic.
  for (const std::uint64_t seed : {11ull, 22ull, 33ull}) {
    TraceShape shape;
    const auto ops = make_trace(seed, shape);

    auto sig_o = base_options(cc::Backend::kAsymmetricSignature, shape.threads);
    sig_o.batch_size = 64;
    auto exact_o = base_options(cc::Backend::kExact, shape.threads);
    exact_o.batch_size = 64;
    const auto sig = replay(ops, sig_o);
    const auto exact = replay(ops, exact_o);

    const auto ss = sig->stats();
    const auto es = exact->stats();
    ASSERT_EQ(ss.accesses, es.accesses);
    ASSERT_EQ(ss.reads, es.reads);

    const double fpr_budget =
        5.0 * sig_o.fp_rate * static_cast<double>(ss.reads);
    const double aliasing_budget = 32.0;
    const double bound = fpr_budget + aliasing_budget;
    const double diff = static_cast<double>(
        ss.dependencies > es.dependencies ? ss.dependencies - es.dependencies
                                          : es.dependencies - ss.dependencies);
    EXPECT_LE(diff, bound)
        << "seed=" << seed << " sig=" << ss.dependencies
        << " exact=" << es.dependencies << " reads=" << ss.reads;

    // The matrices must agree in the aggregate to the same tolerance
    // (divergence is per-edge, bytes per edge <= 8).
    const std::uint64_t st = sig->communication_matrix().total();
    const std::uint64_t et = exact->communication_matrix().total();
    const double byte_diff = static_cast<double>(st > et ? st - et : et - st);
    EXPECT_LE(byte_diff, 8.0 * bound) << "seed=" << seed;
  }
}

// --- flush-ordering semantics ----------------------------------------------

TEST(Differential, PartialBatchDrainsOnLoopExitWithInnerAttribution) {
  auto o = base_options(cc::Backend::kAsymmetricSignature, 4);
  o.batch_size = 64;
  cc::Profiler prof(o);
  const ci::LoopId inner = trace_loop(0);
  prof.on_thread_begin(0);
  prof.on_thread_begin(1);
  prof.on_access(0, 0x9000, 8, ci::AccessKind::kWrite);
  prof.on_drain(0);
  prof.on_loop_enter(1, inner);
  prof.on_access(1, 0x9000, 8, ci::AccessKind::kRead);
  EXPECT_EQ(prof.pending_events(1), 1u);  // buffered, not yet detected
  prof.on_loop_exit(1);                   // must drain BEFORE the pop
  EXPECT_EQ(prof.pending_events(1), 0u);
  const auto nodes = prof.regions().preorder();
  ASSERT_EQ(nodes.size(), 2u);
  EXPECT_EQ(nodes[1]->loop(), inner);
  EXPECT_EQ(nodes[1]->direct().at(0, 1), 8u)
      << "dependency must attribute to the loop the access ran in";
  EXPECT_EQ(prof.regions().root().direct().at(0, 1), 0u);
}

TEST(Differential, FlushAllAndFinalizeDrainEveryThread) {
  auto o = base_options(cc::Backend::kAsymmetricSignature, 4);
  o.batch_size = 128;
  cc::Profiler prof(o);
  for (int t = 0; t < 4; ++t) {
    prof.on_thread_begin(t);
    for (int i = 0; i < 3; ++i) {
      prof.on_access(t, 0xA000u + 8u * static_cast<unsigned>(i), 8,
                     ci::AccessKind::kWrite);
    }
    EXPECT_EQ(prof.pending_events(t), 3u);
  }
  EXPECT_EQ(prof.stats().accesses, 0u);  // nothing through the detector yet
  prof.flush_all();
  for (int t = 0; t < 4; ++t) EXPECT_EQ(prof.pending_events(t), 0u);
  EXPECT_EQ(prof.stats().accesses, 12u);

  prof.on_access(0, 0xB000, 8, ci::AccessKind::kRead);
  EXPECT_EQ(prof.pending_events(0), 1u);
  prof.finalize();  // finalize() implies flush_all()
  EXPECT_EQ(prof.pending_events(0), 0u);
  EXPECT_EQ(prof.stats().accesses, 13u);
}

TEST(Differential, BatchFullFlushKeepsRingBounded) {
  auto o = base_options(cc::Backend::kAsymmetricSignature, 2);
  o.batch_size = 8;
  cc::Profiler prof(o);
  prof.on_thread_begin(0);
  for (int i = 0; i < 20; ++i) {
    prof.on_access(0, 0xC000u + 8u * static_cast<unsigned>(i), 8,
                   ci::AccessKind::kWrite);
  }
  // 20 = 2 full flushes of 8 + 4 pending.
  EXPECT_EQ(prof.pending_events(0), 4u);
  EXPECT_EQ(prof.stats().accesses, 16u);
}

TEST(Differential, RejectsBatchSizeAboveRingCapacity) {
  auto o = base_options(cc::Backend::kAsymmetricSignature, 2);
  o.batch_size = cc::kMaxBatchSize + 1;
  EXPECT_THROW({ cc::Profiler prof(o); }, std::invalid_argument);
}
