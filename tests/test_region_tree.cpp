// Region-tree tests: nesting contexts, the parent-equals-sum-of-children
// aggregation property of Figures 6/7, labels and traversal.
#include <gtest/gtest.h>

#include "core/region_tree.hpp"
#include "instrument/loop_registry.hpp"

namespace cc = commscope::core;
namespace ci = commscope::instrument;

namespace {

ci::LoopId declare(const char* fn, const char* name) {
  return ci::LoopRegistry::instance().declare(fn, name);
}

}  // namespace

TEST(RegionTree, RootIsUnlabelledDepthZero) {
  cc::RegionTree tree(4);
  EXPECT_EQ(tree.root().label(), "<root>");
  EXPECT_EQ(tree.root().depth(), 0);
  EXPECT_EQ(tree.root().parent(), nullptr);
  EXPECT_EQ(tree.node_count(), 1u);
}

TEST(RegionTree, ChildCreatedOncePerLoopPerContext) {
  cc::RegionTree tree(4);
  const ci::LoopId outer = declare("f", "outer");
  const ci::LoopId inner = declare("f", "inner");
  cc::RegionNode* a = tree.root().child(outer);
  cc::RegionNode* b = tree.root().child(outer);
  EXPECT_EQ(a, b);  // same context + same loop = same node
  cc::RegionNode* nested = a->child(inner);
  cc::RegionNode* direct = tree.root().child(inner);
  EXPECT_NE(nested, direct);  // same loop, different context = distinct nodes
  EXPECT_EQ(tree.node_count(), 4u);
}

TEST(RegionTree, DepthAndLabels) {
  cc::RegionTree tree(2);
  const ci::LoopId l1 = declare("lu", "bmod");
  const ci::LoopId l2 = declare("lu", "daxpy");
  cc::RegionNode* bmod = tree.root().child(l1);
  cc::RegionNode* daxpy = bmod->child(l2);
  EXPECT_EQ(bmod->depth(), 1);
  EXPECT_EQ(daxpy->depth(), 2);
  EXPECT_EQ(bmod->label(), "lu:bmod");
  EXPECT_EQ(daxpy->label(), "lu:daxpy");
}

TEST(RegionTree, AggregateIsDirectPlusDescendants) {
  // The paper's "final communication matrix can be obtained by summing all
  // its child matrices together" (Section V.A.4).
  cc::RegionTree tree(4);
  cc::RegionNode* a = tree.root().child(declare("g", "a"));
  cc::RegionNode* b = a->child(declare("g", "b"));
  tree.root().matrix().add(0, 1, 5);
  a->matrix().add(1, 2, 7);
  b->matrix().add(2, 3, 11);

  const cc::Matrix agg_root = tree.root().aggregate();
  EXPECT_EQ(agg_root.total(), 23u);
  EXPECT_EQ(agg_root.at(0, 1), 5u);
  EXPECT_EQ(agg_root.at(1, 2), 7u);
  EXPECT_EQ(agg_root.at(2, 3), 11u);

  const cc::Matrix agg_a = a->aggregate();
  EXPECT_EQ(agg_a.total(), 18u);
  EXPECT_EQ(a->direct().total(), 7u);

  // Explicit sum-of-children identity: direct(parent) + sum(aggregate(child))
  cc::Matrix reconstructed = tree.root().direct();
  for (const cc::RegionNode* c : tree.root().children()) {
    reconstructed += c->aggregate();
  }
  EXPECT_EQ(reconstructed, agg_root);
}

TEST(RegionTree, EntryCounting) {
  cc::RegionTree tree(2);
  cc::RegionNode* n = tree.root().child(declare("h", "loop"));
  EXPECT_EQ(n->entries(), 0u);
  n->count_entry();
  n->count_entry();
  EXPECT_EQ(n->entries(), 2u);
}

TEST(RegionTree, PreorderVisitsParentBeforeChild) {
  cc::RegionTree tree(2);
  cc::RegionNode* a = tree.root().child(declare("p", "a"));
  a->child(declare("p", "b"));
  const auto nodes = tree.preorder();
  ASSERT_EQ(nodes.size(), 3u);
  EXPECT_EQ(nodes[0], &tree.root());
  EXPECT_EQ(nodes[1], a);
  EXPECT_EQ(nodes[1]->depth() + 1, nodes[2]->depth());
}

TEST(RegionTree, MemoryChargedPerNode) {
  commscope::support::MemoryTracker tracker;
  cc::RegionTree tree(8, &tracker);
  const std::uint64_t base = tracker.current();
  EXPECT_GT(base, 0u);
  tree.root().child(declare("m", "x"));
  EXPECT_GT(tracker.current(), base);
}
