// Instrumentation-layer tests: loop registry, RAII loop scopes, the
// COMMSCOPE_LOOP macro's once-per-site UID semantics, TracedSpan event
// emission, NullSink zero-cost property.
#include <gtest/gtest.h>

#include <vector>

#include "instrument/loop_registry.hpp"
#include "instrument/loop_scope.hpp"
#include "instrument/sink.hpp"
#include "instrument/traced.hpp"

namespace ci = commscope::instrument;

namespace {

/// Recording sink capturing the full event stream for assertions.
class RecordingSink final : public ci::AccessSink {
 public:
  struct Event {
    enum Kind { kThreadBegin, kLoopEnter, kLoopExit, kAccess } kind;
    int tid = 0;
    ci::LoopId loop = ci::kNoLoop;
    std::uintptr_t addr = 0;
    std::uint32_t size = 0;
    ci::AccessKind access = ci::AccessKind::kRead;
  };

  void on_thread_begin(int tid) override {
    events.push_back({Event::kThreadBegin, tid, ci::kNoLoop, 0, 0,
                      ci::AccessKind::kRead});
  }
  void on_loop_enter(int tid, ci::LoopId id) override {
    events.push_back(
        {Event::kLoopEnter, tid, id, 0, 0, ci::AccessKind::kRead});
  }
  void on_loop_exit(int tid) override {
    events.push_back(
        {Event::kLoopExit, tid, ci::kNoLoop, 0, 0, ci::AccessKind::kRead});
  }
  void on_access(int tid, std::uintptr_t addr, std::uint32_t size,
                 ci::AccessKind kind) override {
    events.push_back({Event::kAccess, tid, ci::kNoLoop, addr, size, kind});
  }

  std::vector<Event> events;
};

}  // namespace

TEST(LoopRegistry, AssignsDenseUniqueIds) {
  auto& reg = ci::LoopRegistry::instance();
  const ci::LoopId a = reg.declare("fn", "loop_a");
  const ci::LoopId b = reg.declare("fn", "loop_b");
  EXPECT_NE(a, b);
  EXPECT_EQ(b, a + 1);  // dense assignment
  EXPECT_EQ(reg.info(a).name, "loop_a");
  EXPECT_EQ(reg.info(b).function, "fn");
  EXPECT_EQ(reg.label(a), "fn:loop_a");
}

TEST(LoopRegistry, UnknownIdYieldsPlaceholder) {
  auto& reg = ci::LoopRegistry::instance();
  EXPECT_EQ(reg.label(ci::kNoLoop - 1), "?:?");
}

TEST(LoopScope, EmitsEnterAndExit) {
  RecordingSink sink;
  const ci::LoopId id = ci::LoopRegistry::instance().declare("s", "x");
  {
    ci::LoopScope scope(static_cast<ci::AccessSink&>(sink), 3, id);
    ASSERT_EQ(sink.events.size(), 1u);
    EXPECT_EQ(sink.events[0].kind, RecordingSink::Event::kLoopEnter);
    EXPECT_EQ(sink.events[0].tid, 3);
    EXPECT_EQ(sink.events[0].loop, id);
  }
  ASSERT_EQ(sink.events.size(), 2u);
  EXPECT_EQ(sink.events[1].kind, RecordingSink::Event::kLoopExit);
}

TEST(LoopScope, MacroDeclaresOncePerSite) {
  RecordingSink sink;
  ci::AccessSink& s = sink;
  const std::size_t before = ci::LoopRegistry::instance().size();
  for (int rep = 0; rep < 5; ++rep) {
    COMMSCOPE_LOOP(s, 0, "macro", "repeated");
  }
  // Five dynamic executions, one static declaration.
  EXPECT_EQ(ci::LoopRegistry::instance().size(), before + 1);
  EXPECT_EQ(sink.events.size(), 10u);  // 5 x (enter + exit)
  // Every execution reused the same UID.
  const ci::LoopId first = sink.events[0].loop;
  for (std::size_t e = 0; e < sink.events.size(); e += 2) {
    EXPECT_EQ(sink.events[e].loop, first);
  }
}

TEST(LoopScope, NullSinkSpecializationCompilesToNothing) {
  ci::NullSink null;
  COMMSCOPE_LOOP(null, 0, "null", "noop");
  // Nothing observable; the declaration above must still register the site.
  SUCCEED();
}

TEST(TracedSpan, ReadsEmitReadEvents) {
  RecordingSink sink;
  std::vector<double> data{1.0, 2.0, 3.0};
  ci::TracedSpan<double, ci::AccessSink> span(data, sink, 7);
  EXPECT_DOUBLE_EQ(span[1], 2.0);
  EXPECT_DOUBLE_EQ(span.load(2), 3.0);
  ASSERT_EQ(sink.events.size(), 2u);
  EXPECT_EQ(sink.events[0].access, ci::AccessKind::kRead);
  EXPECT_EQ(sink.events[0].addr, reinterpret_cast<std::uintptr_t>(&data[1]));
  EXPECT_EQ(sink.events[0].size, sizeof(double));
  EXPECT_EQ(sink.events[0].tid, 7);
}

TEST(TracedSpan, StoresEmitWriteEventsAndMutate) {
  RecordingSink sink;
  std::vector<int> data{0, 0};
  ci::TracedSpan<int, ci::AccessSink> span(data, sink, 2);
  span.store(1, 42);
  EXPECT_EQ(data[1], 42);
  ASSERT_EQ(sink.events.size(), 1u);
  EXPECT_EQ(sink.events[0].access, ci::AccessKind::kWrite);
}

TEST(TracedSpan, UpdateEmitsReadThenWrite) {
  RecordingSink sink;
  std::vector<int> data{10};
  ci::TracedSpan<int, ci::AccessSink> span(data, sink, 0);
  span.update(0, [](int v) { return v + 5; });
  EXPECT_EQ(data[0], 15);
  ASSERT_EQ(sink.events.size(), 2u);
  EXPECT_EQ(sink.events[0].access, ci::AccessKind::kRead);
  EXPECT_EQ(sink.events[1].access, ci::AccessKind::kWrite);
}

TEST(TracedSpan, NullSinkVariantIsPureView) {
  ci::NullSink null;
  std::vector<double> data{5.0};
  ci::TracedSpan<double, ci::NullSink> span(data, null, 0);
  EXPECT_DOUBLE_EQ(span[0], 5.0);
  span.store(0, 6.0);
  EXPECT_DOUBLE_EQ(data[0], 6.0);
  EXPECT_EQ(span.size(), 1u);
}

TEST(SinkConvenience, TypedReadWriteCarrySizeof) {
  RecordingSink sink;
  double d = 0.0;
  float f = 0.0f;
  sink.read(1, &d);
  sink.write(2, &f);
  ASSERT_EQ(sink.events.size(), 2u);
  EXPECT_EQ(sink.events[0].size, 8u);
  EXPECT_EQ(sink.events[1].size, 4u);
}
