// Communication-matrix tests: accumulator semantics, snapshot value type,
// Eq.1-supporting row/column sums, normalization, trimming, concurrency.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/comm_matrix.hpp"

namespace cc = commscope::core;

TEST(Matrix, StartsZero) {
  cc::Matrix m(4);
  EXPECT_EQ(m.total(), 0u);
  EXPECT_EQ(m.size(), 4);
  EXPECT_EQ(m.active_threads(), 0);
}

TEST(Matrix, RowAndColSums) {
  cc::Matrix m(3);
  m.at(0, 1) = 10;
  m.at(0, 2) = 5;
  m.at(2, 0) = 7;
  EXPECT_EQ(m.row_sum(0), 15u);  // bytes produced by thread 0
  EXPECT_EQ(m.col_sum(0), 7u);   // bytes consumed by thread 0
  EXPECT_EQ(m.total(), 22u);
}

TEST(Matrix, PlusEqualsAccumulates) {
  cc::Matrix a(2);
  cc::Matrix b(2);
  a.at(0, 1) = 3;
  b.at(0, 1) = 4;
  b.at(1, 0) = 1;
  a += b;
  EXPECT_EQ(a.at(0, 1), 7u);
  EXPECT_EQ(a.at(1, 0), 1u);
}

TEST(Matrix, PlusEqualsRejectsSizeMismatch) {
  cc::Matrix a(2);
  cc::Matrix b(3);
  EXPECT_THROW(a += b, std::invalid_argument);
}

TEST(Matrix, NormalizedScalesToUnitMax) {
  cc::Matrix m(2);
  m.at(0, 1) = 50;
  m.at(1, 0) = 25;
  const std::vector<double> n = m.normalized();
  EXPECT_DOUBLE_EQ(n[1], 1.0);
  EXPECT_DOUBLE_EQ(n[2], 0.5);
}

TEST(Matrix, NormalizedAllZeroStaysZero) {
  cc::Matrix m(2);
  for (double v : m.normalized()) EXPECT_EQ(v, 0.0);
}

TEST(Matrix, TrimmedKeepsTopLeftCorner) {
  cc::Matrix m(4);
  m.at(0, 1) = 9;
  m.at(3, 3) = 5;
  const cc::Matrix t = m.trimmed(2);
  EXPECT_EQ(t.size(), 2);
  EXPECT_EQ(t.at(0, 1), 9u);
  EXPECT_EQ(t.total(), 9u);
}

TEST(Matrix, TrimBeyondSizeIsIdentity) {
  cc::Matrix m(2);
  m.at(1, 0) = 1;
  EXPECT_EQ(m.trimmed(10), m);
}

TEST(Matrix, ActiveThreadsFindsHighestTouchedIndex) {
  cc::Matrix m(8);
  m.at(1, 4) = 1;
  EXPECT_EQ(m.active_threads(), 5);  // rows/cols 5..7 silent
}

TEST(CommMatrix, SnapshotReflectsAdds) {
  cc::CommMatrix cm(3);
  cm.add(0, 1, 8);
  cm.add(0, 1, 8);
  cm.add(2, 0, 4);
  const cc::Matrix m = cm.snapshot();
  EXPECT_EQ(m.at(0, 1), 16u);
  EXPECT_EQ(m.at(2, 0), 4u);
}

TEST(CommMatrix, ResetClears) {
  cc::CommMatrix cm(2);
  cm.add(0, 1, 1);
  cm.reset();
  EXPECT_EQ(cm.snapshot().total(), 0u);
}

TEST(CommMatrix, RejectsNonPositiveSize) {
  EXPECT_THROW(cc::CommMatrix(0), std::invalid_argument);
}

TEST(CommMatrix, ConcurrentAddsLoseNothing) {
  cc::CommMatrix cm(4);
  constexpr int kThreads = 4;
  constexpr int kIters = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cm, t] {
      for (int i = 0; i < kIters; ++i) cm.add(t, (t + 1) % 4, 1);
    });
  }
  for (auto& th : threads) th.join();
  const cc::Matrix m = cm.snapshot();
  EXPECT_EQ(m.total(), static_cast<std::uint64_t>(kThreads) * kIters);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(m.at(t, (t + 1) % 4), static_cast<std::uint64_t>(kIters));
  }
}

TEST(CommMatrix, ByteSizeFormula) {
  EXPECT_EQ(cc::CommMatrix::byte_size(32), 32u * 32u * 8u);
}

// --- saturation contract ----------------------------------------------------

TEST(CommMatrix, SaturatesAtCapInsteadOfWrapping) {
  cc::CommMatrix m(2);
  EXPECT_FALSE(m.saturated());
  m.add(0, 1, cc::kCommCounterCap - 8);
  EXPECT_FALSE(m.saturated());
  // Crossing the cap clamps the cell and raises the provenance flag; a
  // wrapped counter would instead read as a near-empty matrix.
  m.add(0, 1, 16);
  EXPECT_TRUE(m.saturated());
  const cc::Matrix snap = m.snapshot();
  EXPECT_EQ(snap.at(0, 1), cc::kCommCounterCap);
  EXPECT_TRUE(snap.saturated());
  // Further adds stay clamped.
  m.add(0, 1, 1u << 20);
  EXPECT_EQ(m.snapshot().at(0, 1), cc::kCommCounterCap);
}

TEST(CommMatrix, ResetClearsSaturation) {
  cc::CommMatrix m(2);
  m.add(1, 0, cc::kCommCounterCap + 5);
  EXPECT_TRUE(m.saturated());
  m.reset();
  EXPECT_FALSE(m.saturated());
  EXPECT_EQ(m.snapshot().total(), 0u);
}

TEST(Matrix, PlusEqualsSaturatesPerCellAndOrsFlags) {
  cc::Matrix a(2);
  cc::Matrix b(2);
  a.at(0, 1) = cc::kCommCounterCap - 10;
  b.at(0, 1) = 100;
  a += b;
  EXPECT_EQ(a.at(0, 1), cc::kCommCounterCap);
  EXPECT_TRUE(a.saturated());

  // The flag also propagates from an already-saturated right-hand side.
  cc::Matrix c(2);
  cc::Matrix d(2);
  d.mark_saturated();
  c += d;
  EXPECT_TRUE(c.saturated());
}

TEST(Matrix, SaturationFlagIsProvenanceNotValue) {
  cc::Matrix a(2);
  cc::Matrix b(2);
  a.at(0, 1) = 7;
  b.at(0, 1) = 7;
  b.mark_saturated();
  // Equality compares dimension and cells only; trimming keeps the flag.
  EXPECT_TRUE(a == b);
  EXPECT_TRUE(b.trimmed(2).saturated());
  EXPECT_FALSE(a.trimmed(2).saturated());
}
