// Matrix serialization round-trip and error-handling tests.
#include <gtest/gtest.h>

#include <sstream>

#include "core/matrix_io.hpp"

namespace cc = commscope::core;

TEST(MatrixIo, RoundTripPreservesEveryCell) {
  cc::Matrix m(5);
  std::uint64_t v = 1;
  for (int p = 0; p < 5; ++p) {
    for (int c = 0; c < 5; ++c) m.at(p, c) = v++ * 37;
  }
  std::stringstream ss;
  cc::write_matrix(ss, m);
  EXPECT_EQ(cc::read_matrix(ss), m);
}

TEST(MatrixIo, RoundTripSize1AndLargeValues) {
  cc::Matrix m(1);
  m.at(0, 0) = ~0ull;
  std::stringstream ss;
  cc::write_matrix(ss, m);
  EXPECT_EQ(cc::read_matrix(ss), m);
}

TEST(MatrixIo, RejectsBadMagic) {
  std::stringstream ss("something-else 1\n2\n0 0\n0 0\n");
  EXPECT_THROW(cc::read_matrix(ss), std::runtime_error);
}

TEST(MatrixIo, RejectsWrongVersion) {
  std::stringstream ss("commscope-matrix 99\n2\n0 0\n0 0\n");
  EXPECT_THROW(cc::read_matrix(ss), std::runtime_error);
}

TEST(MatrixIo, RejectsInvalidSize) {
  std::stringstream zero("commscope-matrix 1\n0\n");
  EXPECT_THROW(cc::read_matrix(zero), std::runtime_error);
  std::stringstream negative("commscope-matrix 1\n-3\n");
  EXPECT_THROW(cc::read_matrix(negative), std::runtime_error);
  std::stringstream huge("commscope-matrix 1\n100000\n");
  EXPECT_THROW(cc::read_matrix(huge), std::runtime_error);
}

TEST(MatrixIo, RejectsTruncatedCells) {
  std::stringstream ss("commscope-matrix 1\n2\n1 2 3\n");
  EXPECT_THROW(cc::read_matrix(ss), std::runtime_error);
}

TEST(MatrixIo, RejectsNonNumericCells) {
  std::stringstream ss("commscope-matrix 1\n2\n1 2 3 banana\n");
  EXPECT_THROW(cc::read_matrix(ss), std::runtime_error);
}

TEST(MatrixIo, OutputIsHumanReadableWithCrcTrailer) {
  cc::Matrix m(2);
  m.at(0, 1) = 42;
  std::stringstream ss;
  cc::write_matrix(ss, m);
  const std::string text = ss.str();
  EXPECT_TRUE(text.starts_with("commscope-matrix 2\n2\n0 42\n0 0\ncrc32 "))
      << text;
  EXPECT_EQ(text.back(), '\n');
}

TEST(MatrixIo, AcceptsLegacyVersion1WithoutCrc) {
  std::stringstream ss("commscope-matrix 1\n2\n0 42\n0 0\n");
  const cc::Matrix m = cc::read_matrix(ss);
  EXPECT_EQ(m.size(), 2);
  EXPECT_EQ(m.at(0, 1), 42u);
}

TEST(MatrixIo, RejectsVersion2WithoutCrcTrailer) {
  std::stringstream ss("commscope-matrix 2\n2\n0 42\n0 0\n");
  EXPECT_THROW(cc::read_matrix(ss), std::runtime_error);
}

TEST(MatrixIo, RejectsCorruptedCrc) {
  cc::Matrix m(3);
  m.at(1, 2) = 7;
  std::stringstream ss;
  cc::write_matrix(ss, m);
  std::string text = ss.str();
  text[text.size() / 2] ^= 1;  // flip one payload bit
  std::stringstream damaged(text);
  EXPECT_THROW(cc::read_matrix(damaged), std::runtime_error);
}

TEST(MatrixIo, RejectsAllocationBombHeader) {
  // The declared dimension must be rejected before the n^2 allocation.
  std::stringstream ss("commscope-matrix 1\n1000000000\n");
  EXPECT_THROW(cc::read_matrix(ss), std::runtime_error);
}

TEST(MatrixIo, RejectsTrailingData) {
  std::stringstream ss("commscope-matrix 1\n1\n5\nextra\n");
  EXPECT_THROW(cc::read_matrix(ss), std::runtime_error);
}
