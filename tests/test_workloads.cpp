// Workload-replica tests: every kernel self-verifies, produces identical
// results instrumented and native (instrumentation must not perturb
// computation), generates real inter-thread communication, and exhibits the
// communication shape its SPLASH namesake is known for.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <tuple>

#include "core/profiler.hpp"
#include "threading/thread_pool.hpp"
#include "workloads/workload.hpp"

namespace cw = commscope::workloads;
namespace cc = commscope::core;
namespace ct = commscope::threading;

namespace {

constexpr int kThreads = 4;

std::unique_ptr<cc::Profiler> make_profiler() {
  cc::ProfilerOptions o;
  o.max_threads = kThreads;
  o.backend = cc::Backend::kExact;  // ground truth for shape assertions
  return std::make_unique<cc::Profiler>(o);
}

}  // namespace

TEST(WorkloadRegistry, HasAllFourteenSplashApps) {
  const auto& all = cw::registry();
  ASSERT_EQ(all.size(), 14u);
  for (const char* name :
       {"barnes", "fmm", "ocean_cp", "ocean_ncp", "radiosity", "raytrace",
        "volrend", "water_nsq", "water_spat", "cholesky", "fft", "lu_cb",
        "lu_ncb", "radix"}) {
    EXPECT_NE(cw::find(name), nullptr) << name;
  }
  EXPECT_EQ(cw::find("nonesuch"), nullptr);
}

class EveryWorkload : public ::testing::TestWithParam<const char*> {};

TEST_P(EveryWorkload, NativeRunVerifies) {
  const cw::Workload* w = cw::find(GetParam());
  ASSERT_NE(w, nullptr);
  ct::ThreadTeam team(kThreads);
  const cw::Result r = w->run(cw::Scale::kDev, team, nullptr);
  EXPECT_TRUE(r.ok) << w->name << " failed self-verification";
  EXPECT_GT(r.work_items, 0u);
}

TEST_P(EveryWorkload, InstrumentationDoesNotPerturbResults) {
  const cw::Workload* w = cw::find(GetParam());
  ASSERT_NE(w, nullptr);
  ct::ThreadTeam team(kThreads);
  const cw::Result native = w->run(cw::Scale::kDev, team, nullptr);
  auto prof = make_profiler();
  const cw::Result instrumented = w->run(cw::Scale::kDev, team, prof.get());
  EXPECT_TRUE(instrumented.ok);
  EXPECT_DOUBLE_EQ(native.checksum, instrumented.checksum) << w->name;
}

TEST_P(EveryWorkload, ProducesInterThreadCommunication) {
  const cw::Workload* w = cw::find(GetParam());
  ASSERT_NE(w, nullptr);
  ct::ThreadTeam team(kThreads);
  auto prof = make_profiler();
  const cw::Result r = w->run(cw::Scale::kDev, team, prof.get());
  ASSERT_TRUE(r.ok);
  const cc::Matrix m = prof->communication_matrix();
  EXPECT_GT(m.total(), 0u) << w->name << " recorded no communication";
  for (int i = 0; i < m.size(); ++i) {
    EXPECT_EQ(m.at(i, i), 0u) << "self-communication in " << w->name;
  }
  // Every thread participates somewhere (as producer or consumer).
  for (int i = 0; i < kThreads; ++i) {
    EXPECT_GT(m.row_sum(i) + m.col_sum(i), 0u)
        << "thread " << i << " silent in " << w->name;
  }
}

TEST_P(EveryWorkload, BuildsNestedRegions) {
  const cw::Workload* w = cw::find(GetParam());
  ASSERT_NE(w, nullptr);
  ct::ThreadTeam team(kThreads);
  auto prof = make_profiler();
  ASSERT_TRUE(w->run(cw::Scale::kDev, team, prof.get()).ok);
  // At least the kernel driver region plus one inner region.
  EXPECT_GE(prof->regions().node_count(), 3u);
}

INSTANTIATE_TEST_SUITE_P(
    AllApps, EveryWorkload,
    ::testing::Values("barnes", "fmm", "ocean_cp", "ocean_ncp", "radiosity",
                      "raytrace", "volrend", "water_nsq", "water_spat",
                      "cholesky", "fft", "lu_cb", "lu_ncb", "radix"));

// --- shape assertions ---------------------------------------------------------

TEST(WorkloadShapes, OceanCpIsNeighbourDominated) {
  ct::ThreadTeam team(kThreads);
  auto prof = make_profiler();
  ASSERT_TRUE(cw::find("ocean_cp")->run(cw::Scale::kDev, team, prof.get()).ok);
  const cc::Matrix m = prof->communication_matrix();
  std::uint64_t neighbour = 0;
  for (int i = 0; i + 1 < kThreads; ++i) {
    neighbour += m.at(i, i + 1) + m.at(i + 1, i);
  }
  // Halo traffic (±1) must dominate; the remainder is the hub-shaped
  // reduction and barrier traffic.
  EXPECT_GT(static_cast<double>(neighbour),
            0.45 * static_cast<double>(m.total()));
}

TEST(WorkloadShapes, OceanNcpMovesMoreBytesThanCp) {
  ct::ThreadTeam team(kThreads);
  auto cp_prof = make_profiler();
  auto ncp_prof = make_profiler();
  ASSERT_TRUE(cw::find("ocean_cp")->run(cw::Scale::kDev, team, cp_prof.get()).ok);
  ASSERT_TRUE(
      cw::find("ocean_ncp")->run(cw::Scale::kDev, team, ncp_prof.get()).ok);
  // Interleaved rows make every interior row a partition boundary.
  EXPECT_GT(ncp_prof->communication_matrix().total(),
            2 * cp_prof->communication_matrix().total());
}

TEST(WorkloadShapes, WaterNsqIsAllToAll) {
  ct::ThreadTeam team(kThreads);
  auto prof = make_profiler();
  ASSERT_TRUE(cw::find("water_nsq")->run(cw::Scale::kDev, team, prof.get()).ok);
  const cc::Matrix m = prof->communication_matrix();
  // Every ordered producer/consumer pair communicates.
  for (int p = 0; p < kThreads; ++p) {
    for (int c = 0; c < kThreads; ++c) {
      if (p == c) continue;
      EXPECT_GT(m.at(p, c), 0u) << p << "->" << c;
    }
  }
}

TEST(WorkloadShapes, RadixPrefixIsThreadZeroCentric) {
  ct::ThreadTeam team(kThreads);
  auto prof = make_profiler();
  ASSERT_TRUE(cw::find("radix")->run(cw::Scale::kDev, team, prof.get()).ok);
  // Find the radix:prefix region and confirm only thread 0 consumes there —
  // Figure 8a's half-idle hotspot, in the extreme.
  bool found = false;
  for (const cc::RegionNode* node : prof->regions().preorder()) {
    if (node->label() != "radix:prefix") continue;
    found = true;
    const cc::Matrix m = node->aggregate();
    ASSERT_GT(m.total(), 0u);
    for (int c = 1; c < kThreads; ++c) {
      EXPECT_EQ(m.col_sum(c), 0u) << "thread " << c << " consumed in prefix";
    }
  }
  EXPECT_TRUE(found);
}

TEST(WorkloadShapes, RaytraceSceneFlowsFromThreadZero) {
  ct::ThreadTeam team(kThreads);
  auto prof = make_profiler();
  ASSERT_TRUE(cw::find("raytrace")->run(cw::Scale::kDev, team, prof.get()).ok);
  const cc::Matrix m = prof->communication_matrix();
  // Thread 0 built the scene; it must be the dominant producer.
  std::uint64_t best = 0;
  for (int p = 0; p < kThreads; ++p) best = std::max(best, m.row_sum(p));
  EXPECT_EQ(m.row_sum(0), best);
  EXPECT_GT(m.row_sum(0), 0u);
}

TEST(WorkloadShapes, LuVariantsDiffer) {
  ct::ThreadTeam team(kThreads);
  auto cb_prof = make_profiler();
  auto ncb_prof = make_profiler();
  ASSERT_TRUE(cw::find("lu_cb")->run(cw::Scale::kDev, team, cb_prof.get()).ok);
  ASSERT_TRUE(cw::find("lu_ncb")->run(cw::Scale::kDev, team, ncb_prof.get()).ok);
  // Same factorization, different ownership => different matrices.
  EXPECT_NE(cb_prof->communication_matrix(), ncb_prof->communication_matrix());
}

TEST(WorkloadDeterminism, ChecksumsStableAcrossRepeatsAndTeams) {
  const cw::Workload* fft = cw::find("fft");
  ct::ThreadTeam team4(4);
  ct::ThreadTeam team8(8);
  const double a = fft->run(cw::Scale::kDev, team4, nullptr).checksum;
  const double b = fft->run(cw::Scale::kDev, team4, nullptr).checksum;
  const double c = fft->run(cw::Scale::kDev, team8, nullptr).checksum;
  EXPECT_DOUBLE_EQ(a, b);
  EXPECT_DOUBLE_EQ(a, c);  // partition-independent math
}

// --- thread-count sweep (partition robustness) ---------------------------------

class ThreadCountSweep
    : public ::testing::TestWithParam<std::tuple<const char*, int>> {};

TEST_P(ThreadCountSweep, VerifiesAtAwkwardThreadCounts) {
  const auto [name, threads] = GetParam();
  const cw::Workload* w = cw::find(name);
  ASSERT_NE(w, nullptr);
  ct::ThreadTeam team(threads);
  const cw::Result r = w->run(cw::Scale::kDev, team, nullptr);
  EXPECT_TRUE(r.ok) << name << " @ " << threads << " threads";
}

INSTANTIATE_TEST_SUITE_P(
    AwkwardCounts, ThreadCountSweep,
    ::testing::Combine(
        // One representative per structural family: matrix-block, butterfly,
        // scatter, stencil, n-body, tree, task-queue.
        ::testing::Values("lu_cb", "fft", "radix", "ocean_ncp", "water_spat",
                          "barnes", "raytrace"),
        // Non-powers-of-two and a count exceeding the block structure.
        ::testing::Values(2, 3, 5, 7, 8)));

// --- remaining per-app shape assertions -----------------------------------------

TEST(WorkloadShapes, FftButterflyHasPowerOfTwoOffsets) {
  ct::ThreadTeam team(8);
  cc::ProfilerOptions o;
  o.max_threads = 8;
  o.backend = cc::Backend::kExact;
  auto prof = std::make_unique<cc::Profiler>(o);
  ASSERT_TRUE(cw::find("fft")->run(cw::Scale::kDev, team, prof.get()).ok);
  const cc::Matrix m = prof->communication_matrix();
  // Butterfly partners sit at power-of-two thread distances once the span
  // exceeds a block; mass at |p-c| in {4} (the cross-half exchange) must be
  // material, unlike a pure nearest-neighbour code.
  std::uint64_t cross_half = 0;
  for (int p = 0; p < 8; ++p) {
    for (int c = 0; c < 8; ++c) {
      if (std::abs(p - c) == 4) cross_half += m.at(p, c);
    }
  }
  EXPECT_GT(static_cast<double>(cross_half),
            0.1 * static_cast<double>(m.total()));
}

TEST(WorkloadShapes, WaterSpatialIsMoreLocalThanNsquared) {
  ct::ThreadTeam team(kThreads);
  auto nsq = make_profiler();
  auto spat = make_profiler();
  ASSERT_TRUE(cw::find("water_nsq")->run(cw::Scale::kDev, team, nsq.get()).ok);
  ASSERT_TRUE(
      cw::find("water_spat")->run(cw::Scale::kDev, team, spat.get()).ok);
  // Normalized fraction of traffic between nearest-rank neighbours: the
  // cell-list version concentrates interactions spatially, the n^2 version
  // reads everything from everyone.
  auto neighbour_fraction = [](const cc::Matrix& m) {
    std::uint64_t band = 0;
    for (int i = 0; i + 1 < m.size(); ++i) {
      band += m.at(i, i + 1) + m.at(i + 1, i);
    }
    return static_cast<double>(band) / static_cast<double>(m.total());
  };
  EXPECT_GT(neighbour_fraction(spat->communication_matrix()),
            neighbour_fraction(nsq->communication_matrix()));
}

TEST(WorkloadShapes, BarnesTreeFlowsFromBuilderThread) {
  ct::ThreadTeam team(kThreads);
  auto prof = make_profiler();
  ASSERT_TRUE(cw::find("barnes")->run(cw::Scale::kDev, team, prof.get()).ok);
  const cc::Matrix m = prof->communication_matrix();
  // Thread 0 builds the quadtree every step; its producer row dominates.
  std::uint64_t best = 0;
  for (int p = 0; p < kThreads; ++p) best = std::max(best, m.row_sum(p));
  EXPECT_EQ(m.row_sum(0), best);
  EXPECT_GT(static_cast<double>(m.row_sum(0)),
            0.4 * static_cast<double>(m.total()));
}

TEST(WorkloadShapes, VolrendRaysCrossEverySlabOwner) {
  ct::ThreadTeam team(kThreads);
  auto prof = make_profiler();
  ASSERT_TRUE(cw::find("volrend")->run(cw::Scale::kDev, team, prof.get()).ok);
  const cc::Matrix m = prof->communication_matrix();
  // Every slab owner produces voxels consumed by some renderer: all
  // producer rows are populated.
  for (int p = 0; p < kThreads; ++p) {
    EXPECT_GT(m.row_sum(p), 0u) << "slab owner " << p << " never consumed";
  }
}

TEST(WorkloadShapes, CholeskyPanelsFlowForward) {
  ct::ThreadTeam team(kThreads);
  auto prof = make_profiler();
  ASSERT_TRUE(cw::find("cholesky")->run(cw::Scale::kDev, team, prof.get()).ok);
  // The factor->solve->update chain must generate traffic in every region.
  std::set<std::string> seen;
  for (const cc::RegionNode* node : prof->regions().preorder()) {
    if (node->direct().total() > 0) seen.insert(node->label());
  }
  EXPECT_TRUE(seen.count("cholesky:solve"));
  EXPECT_TRUE(seen.count("cholesky:update"));
}

TEST(WorkloadShapes, FmmFarFieldTouchesAllOwners) {
  ct::ThreadTeam team(kThreads);
  auto prof = make_profiler();
  ASSERT_TRUE(cw::find("fmm")->run(cw::Scale::kDev, team, prof.get()).ok);
  // M2L reads every other owner's multipoles: the M2L region matrix has
  // every consumer column populated.
  for (const cc::RegionNode* node : prof->regions().preorder()) {
    if (node->label() != "fmm:M2L") continue;
    const cc::Matrix m = node->aggregate();
    ASSERT_GT(m.total(), 0u);
    for (int c = 0; c < kThreads; ++c) {
      EXPECT_GT(m.col_sum(c), 0u) << "owner " << c << " consumed nothing";
    }
  }
}

// --- simsmall tier: every replica also verifies at the next input scale -------

class SimsmallTier : public ::testing::TestWithParam<const char*> {};

TEST_P(SimsmallTier, NativeRunVerifiesAtSimsmall) {
  const cw::Workload* w = cw::find(GetParam());
  ASSERT_NE(w, nullptr);
  ct::ThreadTeam team(kThreads);
  EXPECT_TRUE(w->run(cw::Scale::kSmall, team, nullptr).ok)
      << w->name << " failed at simsmall";
}

INSTANTIATE_TEST_SUITE_P(
    AllApps, SimsmallTier,
    ::testing::Values("barnes", "fmm", "ocean_cp", "ocean_ncp", "radiosity",
                      "raytrace", "volrend", "water_nsq", "water_spat",
                      "cholesky", "fft", "lu_cb", "lu_ncb", "radix"));
