// Trace record/replay tests — including the methodology payoff: one recorded
// workload trace replayed through every profiler yields exactly comparable
// matrices.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "baseline/ipm_profiler.hpp"
#include "baseline/shadow_profiler.hpp"
#include "core/profiler.hpp"
#include "instrument/trace.hpp"
#include "threading/thread_pool.hpp"
#include "workloads/workload.hpp"

namespace cb = commscope::baseline;
namespace cc = commscope::core;
namespace ci = commscope::instrument;
namespace ct = commscope::threading;
namespace cw = commscope::workloads;

TEST(TraceRecorder, CapturesAllEventKindsInOrder) {
  ci::TraceRecorder rec;
  rec.on_thread_begin(2);
  rec.on_loop_enter(2, 7);
  rec.on_access(2, 0x1000, 8, ci::AccessKind::kWrite);
  rec.on_access(3, 0x1000, 8, ci::AccessKind::kRead);
  rec.on_loop_exit(2);
  ASSERT_EQ(rec.size(), 5u);
  EXPECT_EQ(rec.events()[0].kind, ci::TraceEvent::Kind::kThreadBegin);
  EXPECT_EQ(rec.events()[1].payload, 7u);
  EXPECT_EQ(rec.events()[2].access,
            static_cast<std::uint8_t>(ci::AccessKind::kWrite));
  EXPECT_EQ(rec.events()[3].tid, 3);
  EXPECT_EQ(rec.events()[4].kind, ci::TraceEvent::Kind::kLoopExit);
  EXPECT_EQ(rec.byte_size(), 5 * sizeof(ci::TraceEvent));
}

TEST(TraceReplay, ReproducesProfileExactly) {
  // Record a live 4-thread run once, then replay into a fresh profiler: the
  // replayed matrix must be a valid profile (and two replays must agree
  // bit-for-bit — replay is deterministic even though recording wasn't).
  ci::TraceRecorder rec;
  ct::ThreadTeam team(4);
  ASSERT_TRUE(cw::find("fft")->run(cw::Scale::kDev, team, &rec).ok);

  cc::ProfilerOptions o;
  o.max_threads = 4;
  o.backend = cc::Backend::kExact;
  auto a = std::make_unique<cc::Profiler>(o);
  auto b = std::make_unique<cc::Profiler>(o);
  ci::replay(rec.events(), *a);
  ci::replay(rec.events(), *b);
  EXPECT_EQ(a->communication_matrix(), b->communication_matrix());
  EXPECT_GT(a->communication_matrix().total(), 0u);
}

TEST(TraceReplay, AllProfilersAgreeOnOneTrace) {
  // The cross-profiler methodology: identical input stream => the exact
  // profiler, shadow memory and the IPM replay must produce the *same*
  // matrix (8-byte-element workload so shadow word granularity is exact).
  ci::TraceRecorder rec;
  ct::ThreadTeam team(4);
  ASSERT_TRUE(cw::find("ocean_cp")->run(cw::Scale::kDev, team, &rec).ok);

  cc::ProfilerOptions o;
  o.max_threads = 4;
  o.backend = cc::Backend::kExact;
  auto exact = std::make_unique<cc::Profiler>(o);
  cb::ShadowProfiler shadow(4);
  cb::IpmProfiler ipm(4);
  ci::replay(rec.events(), *exact);
  ci::replay(rec.events(), shadow);
  ci::replay(rec.events(), ipm);

  const cc::Matrix reference = exact->communication_matrix();
  EXPECT_GT(reference.total(), 0u);
  EXPECT_EQ(ipm.communication_matrix(), reference);
  // Shadow detects at 8-byte-word granularity; ocean's shared doubles are
  // word-aligned, but the barrier arrive flags are 1-byte cells that share a
  // word, so allow exactly that sliver of divergence.
  const auto shadow_total =
      static_cast<double>(shadow.communication_matrix().total());
  EXPECT_NEAR(shadow_total / static_cast<double>(reference.total()), 1.0,
              0.02);
}

TEST(TraceReplay, SignatureProfilerOnTraceMatchesExactWhenAmple) {
  ci::TraceRecorder rec;
  ct::ThreadTeam team(4);
  ASSERT_TRUE(cw::find("radix")->run(cw::Scale::kDev, team, &rec).ok);

  cc::ProfilerOptions exact_opt;
  exact_opt.max_threads = 4;
  exact_opt.backend = cc::Backend::kExact;
  auto exact = std::make_unique<cc::Profiler>(exact_opt);
  cc::ProfilerOptions sig_opt = exact_opt;
  sig_opt.backend = cc::Backend::kAsymmetricSignature;
  sig_opt.signature_slots = 1 << 22;
  sig_opt.fp_rate = 1e-9;
  auto sig = std::make_unique<cc::Profiler>(sig_opt);

  ci::replay(rec.events(), *exact);
  ci::replay(rec.events(), *sig);
  const auto te = static_cast<double>(exact->communication_matrix().total());
  const auto ts = static_cast<double>(sig->communication_matrix().total());
  ASSERT_GT(te, 0.0);
  EXPECT_NEAR(ts / te, 1.0, 0.02);
}

TEST(TraceIo, RoundTripPreservesEventsAndLoopLabels) {
  const ci::LoopId loop =
      ci::LoopRegistry::instance().declare("traceio", "hotloop");
  ci::TraceRecorder rec;
  rec.on_thread_begin(1);
  rec.on_loop_enter(1, loop);
  rec.on_access(1, 0xdeadbeef, 16, ci::AccessKind::kRead);
  rec.on_loop_exit(1);

  std::stringstream ss;
  ci::write_trace(ss, rec.events());
  const std::vector<ci::TraceEvent> loaded = ci::read_trace(ss);
  ASSERT_EQ(loaded.size(), rec.size());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_EQ(loaded[i].kind, rec.events()[i].kind);
    EXPECT_EQ(loaded[i].access, rec.events()[i].access);
    EXPECT_EQ(loaded[i].tid, rec.events()[i].tid);
    EXPECT_EQ(loaded[i].size, rec.events()[i].size);
  }
  // Loop UIDs are remapped on load (they are process-local), but the label
  // must survive the round trip — that is what makes cross-process replay
  // reports readable.
  EXPECT_EQ(ci::LoopRegistry::instance().label(
                static_cast<ci::LoopId>(loaded[1].payload)),
            "traceio:hotloop");
  // Address payloads are never remapped.
  EXPECT_EQ(loaded[2].payload, 0xdeadbeefu);
}

TEST(TraceIo, RejectsMalformedInput) {
  std::stringstream bad_magic("nope 1\n0\n");
  EXPECT_THROW(ci::read_trace(bad_magic), std::runtime_error);
  std::stringstream bad_version("commscope-trace 9\n0\n");
  EXPECT_THROW(ci::read_trace(bad_version), std::runtime_error);
  std::stringstream truncated("commscope-trace 1\n2\n0 0 1 0 0\n");
  EXPECT_THROW(ci::read_trace(truncated), std::runtime_error);
  std::stringstream bad_kind("commscope-trace 1\n1\n9 0 1 0 0\n");
  EXPECT_THROW(ci::read_trace(bad_kind), std::runtime_error);
}
