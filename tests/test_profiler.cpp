// End-to-end profiler tests: Algorithm 1 + region attribution + metrics via
// the public AccessSink interface, for both backends.
#include <gtest/gtest.h>

#include <thread>

#include "core/profiler.hpp"
#include "core/thread_load.hpp"
#include "instrument/loop_scope.hpp"

namespace cc = commscope::core;
namespace ci = commscope::instrument;

namespace {

cc::ProfilerOptions small_options(cc::Backend backend) {
  cc::ProfilerOptions o;
  o.max_threads = 8;
  o.signature_slots = 1 << 16;
  o.fp_rate = 1e-6;
  o.backend = backend;
  return o;
}

void write_word(cc::Profiler& p, int tid, std::uintptr_t addr) {
  p.on_access(tid, addr, 8, ci::AccessKind::kWrite);
}

bool read_word(cc::Profiler& p, int tid, std::uintptr_t addr) {
  const auto before = p.stats().dependencies;
  p.on_access(tid, addr, 8, ci::AccessKind::kRead);
  return p.stats().dependencies > before;
}

}  // namespace

class ProfilerBackends : public ::testing::TestWithParam<cc::Backend> {};

TEST_P(ProfilerBackends, RecordsProducerConsumerBytes) {
  cc::Profiler prof(small_options(GetParam()));
  prof.on_thread_begin(0);
  prof.on_thread_begin(1);
  write_word(prof, 0, 0x1000);
  EXPECT_TRUE(read_word(prof, 1, 0x1000));
  const cc::Matrix m = prof.communication_matrix();
  EXPECT_EQ(m.at(0, 1), 8u);
  EXPECT_EQ(m.total(), 8u);
}

TEST_P(ProfilerBackends, FirstTouchSuppressionAndSelfReads) {
  cc::Profiler prof(small_options(GetParam()));
  prof.on_thread_begin(0);
  prof.on_thread_begin(1);
  write_word(prof, 0, 0x2000);
  EXPECT_FALSE(read_word(prof, 0, 0x2000));  // self
  EXPECT_TRUE(read_word(prof, 1, 0x2000));
  EXPECT_FALSE(read_word(prof, 1, 0x2000));  // repeated
  EXPECT_EQ(prof.communication_matrix().at(0, 1), 8u);
}

TEST_P(ProfilerBackends, AttributesToInnermostRegion) {
  cc::Profiler prof(small_options(GetParam()));
  auto& reg = ci::LoopRegistry::instance();
  const ci::LoopId outer = reg.declare("t", "outer");
  const ci::LoopId inner = reg.declare("t", "inner");

  prof.on_thread_begin(0);
  prof.on_thread_begin(1);
  write_word(prof, 0, 0x3000);
  write_word(prof, 0, 0x3008);

  prof.on_loop_enter(1, outer);
  EXPECT_TRUE(read_word(prof, 1, 0x3000));  // attributed to outer
  prof.on_loop_enter(1, inner);
  EXPECT_TRUE(read_word(prof, 1, 0x3008));  // attributed to outer/inner
  prof.on_loop_exit(1);
  prof.on_loop_exit(1);

  const auto& root = prof.regions().root();
  EXPECT_EQ(root.direct().total(), 0u);  // nothing directly at root
  ASSERT_EQ(root.children().size(), 1u);
  const cc::RegionNode* outer_node = root.children()[0];
  EXPECT_EQ(outer_node->direct().total(), 8u);
  ASSERT_EQ(outer_node->children().size(), 1u);
  EXPECT_EQ(outer_node->children()[0]->direct().total(), 8u);
  EXPECT_EQ(outer_node->aggregate().total(), 16u);
  EXPECT_EQ(prof.communication_matrix().total(), 16u);
}

TEST_P(ProfilerBackends, StatsCountEverything) {
  cc::Profiler prof(small_options(GetParam()));
  prof.on_thread_begin(0);
  prof.on_thread_begin(1);
  write_word(prof, 0, 0x4000);
  read_word(prof, 1, 0x4000);
  read_word(prof, 1, 0x4000);
  const cc::ProfileStats s = prof.stats();
  EXPECT_EQ(s.accesses, 3u);
  EXPECT_EQ(s.writes, 1u);
  EXPECT_EQ(s.reads, 2u);
  EXPECT_EQ(s.dependencies, 1u);
}

TEST_P(ProfilerBackends, ConcurrentProducersConsumersAreCaptured) {
  cc::Profiler prof(small_options(GetParam()));
  constexpr int kWords = 512;
  std::vector<std::uintptr_t> addrs(kWords);
  for (int i = 0; i < kWords; ++i) {
    addrs[static_cast<std::size_t>(i)] = 0x100000 + static_cast<std::uintptr_t>(i) * 8;
  }
  prof.on_thread_begin(0);
  prof.on_thread_begin(1);
  prof.on_thread_begin(2);
  for (int i = 0; i < kWords; ++i) write_word(prof, 0, addrs[static_cast<std::size_t>(i)]);
  std::thread c1([&] {
    for (int i = 0; i < kWords; ++i) {
      prof.on_access(1, addrs[static_cast<std::size_t>(i)], 8, ci::AccessKind::kRead);
    }
  });
  std::thread c2([&] {
    for (int i = 0; i < kWords; ++i) {
      prof.on_access(2, addrs[static_cast<std::size_t>(i)], 8, ci::AccessKind::kRead);
    }
  });
  c1.join();
  c2.join();
  // The exact backend captures every word; the signature backend may drop a
  // handful to designed-in slot collisions, never overcount beyond them.
  const cc::Matrix m = prof.communication_matrix();
  const auto full = static_cast<std::uint64_t>(kWords) * 8;
  EXPECT_GE(m.at(0, 1), full * 9 / 10);
  EXPECT_LE(m.at(0, 1), full + full / 10);
  EXPECT_GE(m.at(0, 2), full * 9 / 10);
  if (GetParam() == cc::Backend::kExact) {
    EXPECT_EQ(m.at(0, 1), full);
    EXPECT_EQ(m.at(0, 2), full);
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, ProfilerBackends,
                         ::testing::Values(cc::Backend::kAsymmetricSignature,
                                           cc::Backend::kExact));

TEST(Profiler, SignatureMemoryIsBoundedExactIsNot) {
  cc::ProfilerOptions sig_opt = small_options(cc::Backend::kAsymmetricSignature);
  sig_opt.signature_slots = 2048;
  cc::Profiler sig(sig_opt);
  cc::Profiler exact(small_options(cc::Backend::kExact));
  sig.on_thread_begin(0);
  exact.on_thread_begin(0);

  std::uint64_t sig_peak_small = 0;
  for (std::uintptr_t a = 0; a < 200000; ++a) {
    const std::uintptr_t addr = 0x200000 + a * 8;
    sig.on_access(0, addr, 8, ci::AccessKind::kWrite);
    exact.on_access(0, addr, 8, ci::AccessKind::kWrite);
    if (a == 1000) sig_peak_small = sig.memory_bytes();
  }
  // Signature footprint saturates (bounded by slot count)...
  EXPECT_LE(sig.memory_bytes(), sig_peak_small * 3);
  // ...while the exact backend keeps growing with distinct addresses.
  EXPECT_GT(exact.memory_bytes(), sig.memory_bytes());
}

TEST(Profiler, PhaseTimelineCapturesTransition) {
  cc::ProfilerOptions o = small_options(cc::Backend::kExact);
  o.phase_window_bytes = 256;
  cc::Profiler prof(o);
  prof.on_thread_begin(0);
  prof.on_thread_begin(1);
  prof.on_thread_begin(2);
  // Phase A: 0 -> 1 traffic; phase B: 0 -> 2 traffic.
  for (int i = 0; i < 100; ++i) {
    const std::uintptr_t addr = 0x300000 + static_cast<std::uintptr_t>(i) * 8;
    prof.on_access(0, addr, 8, ci::AccessKind::kWrite);
    prof.on_access(1, addr, 8, ci::AccessKind::kRead);
  }
  for (int i = 0; i < 100; ++i) {
    const std::uintptr_t addr = 0x400000 + static_cast<std::uintptr_t>(i) * 8;
    prof.on_access(0, addr, 8, ci::AccessKind::kWrite);
    prof.on_access(2, addr, 8, ci::AccessKind::kRead);
  }
  prof.finalize();
  const std::vector<cc::Matrix> windows = prof.phase_timeline();
  ASSERT_GE(windows.size(), 2u);
  const std::vector<cc::Phase> phases = cc::detect_phases(windows, 0.8);
  EXPECT_EQ(phases.size(), 2u);
}

TEST(Profiler, ThreadLoadMatchesEquationOne) {
  cc::Profiler prof(small_options(cc::Backend::kExact));
  prof.on_thread_begin(0);
  prof.on_thread_begin(1);
  for (int i = 0; i < 10; ++i) {
    const std::uintptr_t addr = 0x500000 + static_cast<std::uintptr_t>(i) * 8;
    write_word(prof, 0, addr);
    read_word(prof, 1, addr);
  }
  const cc::Matrix m = prof.communication_matrix();
  const std::vector<double> load = cc::thread_load(m);
  // threadLoad_0 = row_sum(0) / threads_count = 80 / 8.
  EXPECT_DOUBLE_EQ(load[0], 10.0);
  EXPECT_DOUBLE_EQ(load[1], 0.0);
}

TEST(Profiler, RejectsBadThreadCounts) {
  cc::ProfilerOptions o;
  o.max_threads = 0;
  EXPECT_THROW(cc::Profiler{o}, std::invalid_argument);
  o.max_threads = 65;
  EXPECT_THROW(cc::Profiler{o}, std::invalid_argument);
}

TEST(Profiler, LoopExitAtRootIsSafe) {
  cc::Profiler prof(small_options(cc::Backend::kExact));
  prof.on_thread_begin(0);
  prof.on_loop_exit(0);  // unmatched exit must not underflow
  write_word(prof, 0, 0x6000);
  SUCCEED();
}

// --- dependence classification extension (full DiscoPoP dependence set) ----

TEST(DependenceClassification, ExactBackendCountsAllKinds) {
  cc::ProfilerOptions o = small_options(cc::Backend::kExact);
  o.classify_dependences = true;
  cc::Profiler prof(o);
  prof.on_thread_begin(0);
  prof.on_thread_begin(1);
  prof.on_thread_begin(2);

  // RAW: 0 writes, 1 reads.
  write_word(prof, 0, 0x7000);
  read_word(prof, 1, 0x7000);
  // RAR: 2 reads what 1 already read.
  read_word(prof, 2, 0x7000);
  // WAR: 2 writes over 1's (and 2's) reads; also WAW over 0's write.
  write_word(prof, 2, 0x7000);
  // WAW only: immediate overwrite by another thread, no reads between.
  write_word(prof, 0, 0x7000);

  const cc::DependenceCounts d = prof.dependence_counts();
  EXPECT_EQ(d.raw, 2u);  // 1 and 2 each consumed 0's write
  EXPECT_EQ(d.rar, 1u);  // thread 2's read saw thread 1's
  EXPECT_EQ(d.war, 1u);  // thread 2's write over foreign reads
  EXPECT_EQ(d.waw, 2u);  // 2-over-0 and 0-over-2
}

TEST(DependenceClassification, SelfAccessesAreNotDependences) {
  cc::ProfilerOptions o = small_options(cc::Backend::kExact);
  o.classify_dependences = true;
  cc::Profiler prof(o);
  prof.on_thread_begin(0);
  write_word(prof, 0, 0x7100);
  read_word(prof, 0, 0x7100);
  read_word(prof, 0, 0x7100);
  write_word(prof, 0, 0x7100);
  const cc::DependenceCounts d = prof.dependence_counts();
  EXPECT_EQ(d.raw, 0u);
  EXPECT_EQ(d.rar, 0u);
  EXPECT_EQ(d.war, 0u);
  EXPECT_EQ(d.waw, 0u);
}

TEST(DependenceClassification, OffByDefaultCostsNothing) {
  cc::Profiler prof(small_options(cc::Backend::kExact));
  prof.on_thread_begin(0);
  prof.on_thread_begin(1);
  write_word(prof, 0, 0x7200);
  write_word(prof, 1, 0x7200);  // would be WAW if classification were on
  const cc::DependenceCounts d = prof.dependence_counts();
  EXPECT_EQ(d.waw, 0u);
}

TEST(DependenceClassification, SignatureBackendApproximatesSameCensus) {
  // The approximate (bloom-based) classification must agree with the exact
  // census on a collision-free workload, modulo the documented WAR
  // overcount direction (own-read WARs are included by the approximation).
  cc::ProfilerOptions sig_opt = small_options(cc::Backend::kAsymmetricSignature);
  sig_opt.classify_dependences = true;
  sig_opt.signature_slots = 1 << 20;
  sig_opt.fp_rate = 1e-9;
  cc::ProfilerOptions exact_opt = small_options(cc::Backend::kExact);
  exact_opt.classify_dependences = true;
  cc::Profiler sig(sig_opt);
  cc::Profiler exact(exact_opt);

  std::uint64_t state = 31;
  for (cc::Profiler* p : {&sig, &exact}) {
    for (int t = 0; t < 4; ++t) p->on_thread_begin(t);
  }
  for (int i = 0; i < 5000; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    const std::uintptr_t addr = 0x80000 + (state >> 33) % 128 * 8;
    const int tid = static_cast<int>((state >> 20) % 4);
    const auto kind = ((state >> 10) & 3) == 0 ? ci::AccessKind::kWrite
                                               : ci::AccessKind::kRead;
    sig.on_access(tid, addr, 8, kind);
    exact.on_access(tid, addr, 8, kind);
  }
  const cc::DependenceCounts ds = sig.dependence_counts();
  const cc::DependenceCounts de = exact.dependence_counts();
  EXPECT_EQ(ds.raw, de.raw);
  EXPECT_EQ(ds.waw, de.waw);
  EXPECT_GE(ds.war, de.war);              // documented overcount direction
  EXPECT_LE(ds.war, de.war + de.raw + 64);  // bounded by own-read WARs
  EXPECT_GT(de.rar, 0u);
}

// --- invalid-tid graceful degradation ---------------------------------------

TEST(Profiler, DropsEventsFromUnregisteredAndOverflowTids) {
  for (const auto backend :
       {cc::Backend::kExact, cc::Backend::kAsymmetricSignature}) {
    cc::Profiler p(small_options(backend));
    // A thread that never got a registry slot carries tid -1
    // (ThreadRegistry::kUnregistered); one past the table carries
    // tid >= max_threads. Both must degrade to counted drops, not index
    // out-of-bounds thread contexts.
    p.on_thread_begin(-1);
    p.on_loop_enter(-1, 7);
    p.on_access(-1, 0x1000, 8, ci::AccessKind::kWrite);
    p.on_loop_exit(-1);
    p.on_access(99, 0x1000, 8, ci::AccessKind::kRead);
    p.on_access(8, 0x1008, 8, ci::AccessKind::kWrite);  // == max_threads
    EXPECT_EQ(p.dropped_events(), 6u);
    EXPECT_EQ(p.stats().accesses, 0u);
    EXPECT_EQ(p.communication_matrix().total(), 0u);

    // Valid tids keep working after the drops.
    p.on_thread_begin(0);
    p.on_thread_begin(1);
    p.on_access(0, 0x2000, 8, ci::AccessKind::kWrite);
    p.on_access(1, 0x2000, 8, ci::AccessKind::kRead);
    EXPECT_EQ(p.stats().dependencies, 1u);
  }
}

TEST(Profiler, DroppedEventsSurfaceInReportProvenance) {
  cc::Profiler p(small_options(cc::Backend::kExact));
  p.on_access(-1, 0x1000, 8, ci::AccessKind::kWrite);
  ASSERT_GT(p.dropped_events(), 0u);
}
