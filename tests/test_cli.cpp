// Integration tests for the `commscope` CLI binary. The binary path arrives
// as the first non-gtest argument (wired in tests/CMakeLists.txt); each test
// shells out and checks exit codes and output files.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace {

std::string g_cli;  // set in main()

struct RunResult {
  int exit_code = -1;
  std::string output;
};

RunResult run_cli(const std::string& args, const std::string& env = "") {
  const std::string cmd =
      (env.empty() ? "" : env + " ") + g_cli + " " + args + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  RunResult r;
  if (pipe == nullptr) return r;
  char buf[512];
  while (fgets(buf, sizeof buf, pipe) != nullptr) r.output += buf;
  const int status = pclose(pipe);
  r.exit_code = WEXITSTATUS(status);
  return r;
}

}  // namespace

TEST(Cli, NoArgsPrintsUsage) {
  const RunResult r = run_cli("");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("usage:"), std::string::npos);
}

TEST(Cli, ListShowsAllWorkloads) {
  const RunResult r = run_cli("list");
  EXPECT_EQ(r.exit_code, 0);
  for (const char* name : {"barnes", "radix", "water_nsq", "lu_ncb"}) {
    EXPECT_NE(r.output.find(name), std::string::npos) << name;
  }
}

TEST(Cli, RunProducesReport) {
  const RunResult r = run_cli("run fft --threads=4");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("CommScope profile"), std::string::npos);
  EXPECT_NE(r.output.find("fft:stage"), std::string::npos);
}

TEST(Cli, UnknownWorkloadFails) {
  const RunResult r = run_cli("run nonesuch");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("unknown workload"), std::string::npos);
}

TEST(Cli, UnknownFlagRejected) {
  const RunResult r = run_cli("run fft --bogus=1");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("unknown flag --bogus"), std::string::npos);
}

TEST(Cli, ClassifyRoundTripThroughSavedMatrix) {
  const std::string matrix = "/tmp/commscope_cli_test.matrix";
  const RunResult save =
      run_cli("run ocean_cp --threads=4 --save-matrix=" + matrix);
  ASSERT_EQ(save.exit_code, 0);
  const RunResult classify = run_cli("classify " + matrix);
  EXPECT_EQ(classify.exit_code, 0);
  EXPECT_NE(classify.output.find("kNN:"), std::string::npos);
  std::remove(matrix.c_str());
}

TEST(Cli, TraceRecordAndReplay) {
  const std::string trace = "/tmp/commscope_cli_test.trace";
  const RunResult save =
      run_cli("run radix --threads=4 --save-trace=" + trace);
  ASSERT_EQ(save.exit_code, 0);
  EXPECT_NE(save.output.find("events written"), std::string::npos);
  const RunResult replay = run_cli("replay " + trace + " --backend=exact");
  EXPECT_EQ(replay.exit_code, 0);
  EXPECT_NE(replay.output.find("replayed"), std::string::npos);
  EXPECT_NE(replay.output.find("radix:permute"), std::string::npos);
  std::remove(trace.c_str());
}

TEST(Cli, MapPlansPlacementFromMatrix) {
  const std::string matrix = "/tmp/commscope_cli_map.matrix";
  ASSERT_EQ(run_cli("run ocean_cp --threads=4 --save-matrix=" + matrix)
                .exit_code,
            0);
  const RunResult map = run_cli("map " + matrix + " --sockets=2 --cores=2");
  EXPECT_EQ(map.exit_code, 0);
  EXPECT_NE(map.output.find("best mapping cost"), std::string::npos);
  std::remove(matrix.c_str());
}

TEST(Cli, DvfsPlanFromPhases) {
  const RunResult r =
      run_cli("run ocean_ncp --threads=4 --phases=8192 --dvfs");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("phases detected:"), std::string::npos);
  EXPECT_NE(r.output.find("DVFS plan:"), std::string::npos);
  EXPECT_NE(r.output.find("GHz"), std::string::npos);
}

TEST(Cli, CsvExportHasSchema) {
  const std::string csv = "/tmp/commscope_cli_test.csv";
  ASSERT_EQ(run_cli("run lu_cb --threads=4 --csv=" + csv).exit_code, 0);
  std::ifstream in(csv);
  ASSERT_TRUE(in.good());
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header.rfind("label,depth,entries", 0), 0u);
  std::remove(csv.c_str());
}

// --- error handling and exit-code contract ---------------------------------
//
// 0 success, 1 runtime failure, 2 usage error, 124 watchdog timeout,
// 128+sig signal death. Locked here so scripts can rely on it.

TEST(CliErrors, UnknownCommandIsUsageError) {
  const RunResult r = run_cli("frobnicate");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("unknown command 'frobnicate'"), std::string::npos);
  EXPECT_NE(r.output.find("usage:"), std::string::npos);
  // The diagnostic names every subcommand, including the observability ones.
  for (const char* cmd : {"list", "run", "replay", "resume", "classify",
                          "map", "stress", "metrics", "top"}) {
    EXPECT_NE(r.output.find(cmd), std::string::npos) << cmd;
  }
}

TEST(CliErrors, MalformedFlagValueIsUsageError) {
  const RunResult r = run_cli("run fft --threads=abc");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("--threads"), std::string::npos);
  const RunResult b = run_cli("run fft --mem-budget=12Q");
  EXPECT_EQ(b.exit_code, 2);
}

TEST(CliErrors, CorruptMatrixFileFailsWithDiagnostic) {
  const std::string path = "/tmp/commscope_cli_corrupt.matrix";
  {
    std::ofstream out(path);
    out << "commscope-matrix 2\n2\n0 1\n2 3\ncrc32 deadbeef\n";
  }
  const RunResult r = run_cli("classify " + path);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("commscope:"), std::string::npos);
  std::remove(path.c_str());
}

// --- resilience: budgets, crash-safety, resume -----------------------------

TEST(CliResilience, MemBudgetRunCompletesWithDegradationProvenance) {
  const RunResult r =
      run_cli("run fft --threads=4 --backend=exact --mem-budget=64K");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("degradations:"), std::string::npos);
  EXPECT_NE(r.output.find("memory budget exceeded"), std::string::npos);
}

TEST(CliResilience, EventBudgetRunCompletesAndLogsSuppression) {
  const RunResult r = run_cli("run fft --threads=4 --event-budget=1000");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("event budget exhausted"), std::string::npos);
}

TEST(CliResilience, InjectedCrashLeavesResumableCheckpoint) {
  const std::string trace = "/tmp/commscope_cli_kill.trace";
  const std::string ck = "/tmp/commscope_cli_kill.ck";
  ASSERT_EQ(run_cli("run radix --threads=4 --save-trace=" + trace).exit_code,
            0);
  const RunResult killed =
      run_cli("replay " + trace + " --checkpoint=" + ck +
                  " --checkpoint-every=10000",
              "COMMSCOPE_FAULT=kill-at-event:50000");
  EXPECT_EQ(killed.exit_code, 139) << killed.output;  // 128 + SIGSEGV
  EXPECT_NE(killed.output.find("emergency snapshot written"),
            std::string::npos);

  const RunResult resumed = run_cli("resume " + ck);
  EXPECT_EQ(resumed.exit_code, 0) << resumed.output;
  EXPECT_NE(resumed.output.find("state: partial"), std::string::npos);
  EXPECT_NE(resumed.output.find("radix:"), std::string::npos);
  std::remove(trace.c_str());
  std::remove(ck.c_str());
}

TEST(CliResilience, WatchdogTimesOutWithResumableCheckpoint) {
  const std::string trace = "/tmp/commscope_cli_hang.trace";
  const std::string ck = "/tmp/commscope_cli_hang.ck";
  ASSERT_EQ(run_cli("run radix --threads=4 --save-trace=" + trace).exit_code,
            0);
  const RunResult hung =
      run_cli("replay " + trace + " --checkpoint=" + ck +
                  " --checkpoint-every=5000 --timeout=0.5",
              "COMMSCOPE_FAULT=\"sleep-at-event:20000;sleep-ms:5000\"");
  EXPECT_EQ(hung.exit_code, 124) << hung.output;
  EXPECT_NE(hung.output.find("watchdog timeout"), std::string::npos);

  const RunResult resumed = run_cli("resume " + ck);
  EXPECT_EQ(resumed.exit_code, 0) << resumed.output;
  EXPECT_NE(resumed.output.find("state: partial"), std::string::npos);
  std::remove(trace.c_str());
  std::remove(ck.c_str());
}

TEST(CliResilience, CleanCheckpointedRunResumesAsComplete) {
  const std::string ck = "/tmp/commscope_cli_clean.ck";
  ASSERT_EQ(
      run_cli("run fft --threads=4 --checkpoint=" + ck).exit_code, 0);
  const RunResult resumed = run_cli("resume " + ck + " --pattern");
  EXPECT_EQ(resumed.exit_code, 0) << resumed.output;
  EXPECT_NE(resumed.output.find("state: complete"), std::string::npos);
  EXPECT_NE(resumed.output.find("detected pattern:"), std::string::npos);
  std::remove(ck.c_str());
}

// --- observability: --quiet, --trace-out/--metrics-out, metrics, top -------

TEST(CliObservability, QuietSuppressesReportButFilesStillWritten) {
  const std::string metrics = "/tmp/commscope_cli_quiet.metrics";
  const RunResult r =
      run_cli("run fft --threads=4 -q --metrics-out=" + metrics);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_EQ(r.output.find("CommScope profile"), std::string::npos)
      << "report printed under --quiet";
  EXPECT_EQ(r.output.find("profiling overhead"), std::string::npos);
  std::ifstream in(metrics);
  ASSERT_TRUE(in.good()) << "--metrics-out not honored under --quiet";
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "# commscope-metrics v1");
  std::remove(metrics.c_str());
}

TEST(CliObservability, RunEmitsTraceJsonAndMetricsSnapshot) {
  const std::string trace = "/tmp/commscope_cli_obs.trace.json";
  const std::string metrics = "/tmp/commscope_cli_obs.metrics";
  // --mem-budget=1K forces the degradation ladder, so the trace must carry
  // degradation instants next to the loop spans and the metrics snapshot
  // must agree with the report's provenance section.
  const RunResult r = run_cli("run lu_cb --threads=4 --mem-budget=1K"
                              " --trace-out=" + trace +
                              " --metrics-out=" + metrics);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("trace events written"), std::string::npos);

  std::ifstream tin(trace);
  ASSERT_TRUE(tin.good());
  std::stringstream tbuf;
  tbuf << tin.rdbuf();
  const std::string json = tbuf.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"loop\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"degradation\""), std::string::npos);
  EXPECT_NE(json.find("lu:"), std::string::npos) << "loop labels unresolved";

  std::ifstream min(metrics);
  ASSERT_TRUE(min.good());
  std::stringstream mbuf;
  mbuf << min.rdbuf();
  EXPECT_NE(mbuf.str().find("profiler.accesses"), std::string::npos);
  EXPECT_NE(mbuf.str().find("profiler.degradations"), std::string::npos);
  std::remove(trace.c_str());
  std::remove(metrics.c_str());
}

TEST(CliObservability, MetricsAggregatesSnapshots) {
  const std::string m1 = "/tmp/commscope_cli_m1.metrics";
  const std::string m2 = "/tmp/commscope_cli_m2.metrics";
  ASSERT_EQ(run_cli("run fft --threads=4 -q --metrics-out=" + m1).exit_code,
            0);
  ASSERT_EQ(run_cli("run radix --threads=4 -q --metrics-out=" + m2).exit_code,
            0);
  const RunResult agg = run_cli("metrics " + m1 + " " + m2);
  EXPECT_EQ(agg.exit_code, 0) << agg.output;
  EXPECT_NE(agg.output.find("aggregated 2 snapshot(s)"), std::string::npos);

  const RunResult none = run_cli("metrics");
  EXPECT_EQ(none.exit_code, 2);
  EXPECT_NE(none.output.find("snapshot files"), std::string::npos);

  const std::string corrupt = "/tmp/commscope_cli_corrupt.metrics";
  {
    std::ofstream out(corrupt);
    out << "# commscope-metrics v1\ncounter x notanumber\n";
  }
  const RunResult bad = run_cli("metrics " + corrupt);
  EXPECT_EQ(bad.exit_code, 1);
  std::remove(m1.c_str());
  std::remove(m2.c_str());
  std::remove(corrupt.c_str());
}

TEST(CliObservability, TopRunsToCompletion) {
  const RunResult r = run_cli("top fft --threads=4 --interval=50");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("commscope top"), std::string::npos);
  EXPECT_NE(r.output.find("events"), std::string::npos);
  EXPECT_NE(r.output.find("run complete:"), std::string::npos);
}

TEST(CliObservability, TopConnectToDeadDaemonFails) {
  const RunResult r =
      run_cli("top --connect=/tmp/commscope_cli_no_daemon.sock"
              " --interval=50");
  EXPECT_EQ(r.exit_code, 1) << r.output;
}

TEST(CliObservability, MetricsPrometheusIsPureExposition) {
  const std::string m = "/tmp/commscope_cli_prom.metrics";
  ASSERT_EQ(run_cli("run fft --threads=4 -q --metrics-out=" + m).exit_code,
            0);
  const RunResult prom = run_cli("metrics --prometheus " + m);
  EXPECT_EQ(prom.exit_code, 0) << prom.output;
  // Machine-readable from byte 0: no banner, straight into the exposition.
  EXPECT_EQ(prom.output.compare(0, 7, "# TYPE "), 0) << prom.output;
  EXPECT_NE(prom.output.find("# TYPE commscope_profiler_accesses gauge"),
            std::string::npos)
      << prom.output;
  std::remove(m.c_str());
}

TEST(CliObservability, TraceMergeStitchesFilesAndRejectsBadInput) {
  // --merge is mandatory, and so is at least one input.
  EXPECT_EQ(run_cli("trace").exit_code, 2);
  EXPECT_EQ(run_cli("trace --merge").exit_code, 2);

  const std::string tj = "/tmp/commscope_cli_tm.trace.json";
  ASSERT_EQ(
      run_cli("run fft --threads=4 -q --trace-out=" + tj).exit_code, 0);
  const std::string merged = "/tmp/commscope_cli_tm.merged.json";
  const RunResult r = run_cli("trace --merge " + tj + " --out=" + merged);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("merged 1 trace(s)"), std::string::npos)
      << r.output;
  std::ifstream min(merged);
  ASSERT_TRUE(min.good());
  std::stringstream mbuf;
  mbuf << min.rdbuf();
  EXPECT_NE(mbuf.str().find("\"mergedFiles\":1"), std::string::npos);

  const std::string junk = "/tmp/commscope_cli_tm.junk";
  {
    std::ofstream out(junk);
    out << "this is not a trace\n";
  }
  const RunResult bad = run_cli("trace --merge " + junk);
  EXPECT_EQ(bad.exit_code, 1) << bad.output;
  EXPECT_NE(bad.output.find("not a Chrome trace"), std::string::npos);
  std::remove(tj.c_str());
  std::remove(merged.c_str());
  std::remove(junk.c_str());
}

TEST(CliObservability, HealthExitContractOkBreachUsageDeadSocket) {
  EXPECT_EQ(run_cli("health").exit_code, 2);  // no inputs: usage

  const std::string okf = "/tmp/commscope_cli_health_ok.metrics";
  {
    std::ofstream out(okf);
    out << "# commscope-metrics v1\n"
        << "counter serve.frames.ok 5 saturated=0\n";
  }
  const RunResult ok = run_cli("health " + okf);
  EXPECT_EQ(ok.exit_code, 0) << ok.output;
  EXPECT_NE(ok.output.find("health: ok"), std::string::npos);

  const std::string badf = "/tmp/commscope_cli_health_bad.metrics";
  {
    std::ofstream out(badf);
    out << "# commscope-metrics v1\n"
        << "counter serve.sessions.dropped 2 saturated=0\n"
        << "counter serve.wal.fsync_failures 1 saturated=0\n";
  }
  const RunResult breach = run_cli("health " + badf);
  EXPECT_EQ(breach.exit_code, 3) << breach.output;
  EXPECT_NE(breach.output.find("BREACH"), std::string::npos);
  EXPECT_NE(breach.output.find("2 SLO breach(es)"), std::string::npos)
      << breach.output;

  const RunResult dead =
      run_cli("health --connect=/tmp/commscope_cli_no_daemon.sock");
  EXPECT_EQ(dead.exit_code, 1) << dead.output;
  std::remove(okf.c_str());
  std::remove(badf.c_str());
}

// --- per-command flag vocabulary --------------------------------------------
//
// Unknown flags exit 2 for EVERY subcommand, and a flag that exists for one
// command is still unknown to a command that does not take it.

TEST(CliErrors, UnknownFlagsExitTwoAcrossAllSubcommands) {
  for (const char* cmd : {"list --bogus", "run fft --bogus=1",
                          "replay x --bogus", "resume x --bogus",
                          "classify x --bogus", "map x --bogus",
                          "stress --bogus", "metrics x --bogus",
                          "top fft --bogus", "report x --bogus",
                          "diff a b --bogus",
                          "serve --socket=/tmp/x.sock --bogus",
                          "trace x --bogus", "health x --bogus"}) {
    const RunResult r = run_cli(cmd);
    EXPECT_EQ(r.exit_code, 2) << cmd << "\n" << r.output;
    EXPECT_NE(r.output.find("unknown flag --bogus"), std::string::npos) << cmd;
  }
}

TEST(CliErrors, FlagsAreScopedToTheirCommands) {
  // --sockets belongs to map, not run; --threads belongs to run, not classify.
  const RunResult a = run_cli("run fft --sockets=2");
  EXPECT_EQ(a.exit_code, 2) << a.output;
  EXPECT_NE(a.output.find("unknown flag --sockets for 'run'"),
            std::string::npos);
  const RunResult b = run_cli("classify foo.matrix --threads=4");
  EXPECT_EQ(b.exit_code, 2) << b.output;
  EXPECT_NE(b.output.find("unknown flag --threads for 'classify'"),
            std::string::npos);
}

// --- flight recorder: epochs, report, diff ----------------------------------

TEST(CliRecorder, RunWritesEpochsAndReportRendersAllFormats) {
  const std::string epochs = "/tmp/commscope_cli_rec.epochs";
  const RunResult r = run_cli("run fft --threads=4 --epoch-every=2000"
                              " --epochs-out=" + epochs);
  ASSERT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("epoch(s) written"), std::string::npos) << r.output;

  const RunResult text = run_cli("report " + epochs);
  EXPECT_EQ(text.exit_code, 0) << text.output;
  EXPECT_NE(text.output.find("epoch"), std::string::npos);
  EXPECT_NE(text.output.find("surviving"), std::string::npos);

  const RunResult json = run_cli("report " + epochs + " --format=json");
  EXPECT_EQ(json.exit_code, 0) << json.output;
  EXPECT_NE(json.output.find("\"epochs\":["), std::string::npos);

  const std::string html = "/tmp/commscope_cli_rec.html";
  const RunResult page =
      run_cli("report " + epochs + " --format=html --out=" + html);
  EXPECT_EQ(page.exit_code, 0) << page.output;
  std::ifstream in(html);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str().rfind("<!doctype html>", 0), 0u);
  EXPECT_NE(buf.str().find("</html>"), std::string::npos);

  const RunResult bad = run_cli("report " + epochs + " --format=pdf");
  EXPECT_EQ(bad.exit_code, 2);
  std::remove(epochs.c_str());
  std::remove(html.c_str());
}

TEST(CliRecorder, DiffOfARunAgainstItselfIsCleanExitZero) {
  const std::string epochs = "/tmp/commscope_cli_selfdiff.epochs";
  ASSERT_EQ(run_cli("run fft --threads=4 --epoch-every=2000 --epochs-out=" +
                    epochs).exit_code,
            0);
  const RunResult d = run_cli("diff " + epochs + " " + epochs);
  EXPECT_EQ(d.exit_code, 0) << d.output;
  EXPECT_NE(d.output.find("clean"), std::string::npos) << d.output;
  std::remove(epochs.c_str());
}

TEST(CliRecorder, DiffFlagsChangedCommunicationExitThree) {
  const std::string a = "/tmp/commscope_cli_diff_a.matrix";
  const std::string b = "/tmp/commscope_cli_diff_b.matrix";
  ASSERT_EQ(run_cli("run fft --threads=4 -q --save-matrix=" + a).exit_code, 0);
  ASSERT_EQ(run_cli("run radix --threads=4 -q --save-matrix=" + b).exit_code,
            0);
  const RunResult d = run_cli("diff " + a + " " + b);
  EXPECT_EQ(d.exit_code, 3) << d.output;  // the CI-gate contract
  EXPECT_NE(d.output.find("REGRESSED"), std::string::npos) << d.output;
  // Loosened thresholds must turn the same pair clean.
  const RunResult loose =
      run_cli("diff " + a + " " + b + " --threshold-l1=2 --threshold-cell=1");
  EXPECT_EQ(loose.exit_code, 0) << loose.output;
  std::remove(a.c_str());
  std::remove(b.c_str());
}

TEST(CliRecorder, ReplayReSliceIsBitIdenticalAtAnyBatchSize) {
  const std::string trace = "/tmp/commscope_cli_reslice.trace";
  const std::string ea = "/tmp/commscope_cli_reslice_a.epochs";
  const std::string eb = "/tmp/commscope_cli_reslice_b.epochs";
  ASSERT_EQ(run_cli("run radix --threads=4 -q --save-trace=" + trace)
                .exit_code,
            0);
  ASSERT_EQ(run_cli("replay " + trace + " -q --epochs=6 --epochs-out=" + ea)
                .exit_code,
            0);
  ASSERT_EQ(run_cli("replay " + trace +
                    " -q --epochs=6 --batch=32 --epochs-out=" + eb)
                .exit_code,
            0);
  std::ifstream fa(ea), fb(eb);
  ASSERT_TRUE(fa.good() && fb.good());
  std::stringstream sa, sb;
  sa << fa.rdbuf();
  sb << fb.rdbuf();
  EXPECT_EQ(sa.str(), sb.str())
      << "re-sliced timeline depends on --batch; replay determinism broken";
  const RunResult d = run_cli("diff " + ea + " " + eb);
  EXPECT_EQ(d.exit_code, 0) << d.output;
  std::remove(trace.c_str());
  std::remove(ea.c_str());
  std::remove(eb.c_str());
}

TEST(CliRecorder, CheckpointWritesEpochSidecar) {
  const std::string ck = "/tmp/commscope_cli_sidecar.ck";
  const RunResult r = run_cli("run fft --threads=4 -q --epoch-every=2000"
                              " --checkpoint=" + ck);
  ASSERT_EQ(r.exit_code, 0) << r.output;
  const RunResult report = run_cli("report " + ck + ".epochs");
  EXPECT_EQ(report.exit_code, 0)
      << "checkpoint did not leave a loadable epoch sidecar\n" << report.output;
  std::remove(ck.c_str());
  std::remove((ck + ".epochs").c_str());
}

TEST(CliRecorder, BenchDiffGateCatchesInjectedRegression) {
  const std::string base = "/tmp/commscope_cli_bench_base.json";
  const std::string slow = "/tmp/commscope_cli_bench_slow.json";
  {
    std::ofstream out(base);
    out << "{\"bench\": \"ingest_throughput\", \"sweep\": [\n"
           "  {\"batch\": 0, \"events_per_sec\": 1e6, \"speedup\": 1},\n"
           "  {\"batch\": 64, \"events_per_sec\": 3e6, \"speedup\": 3}\n]}\n";
  }
  {
    std::ofstream out(slow);  // batch-64 throughput down 40%: past the gate
    out << "{\"bench\": \"ingest_throughput\", \"sweep\": [\n"
           "  {\"batch\": 0, \"events_per_sec\": 1e6, \"speedup\": 1},\n"
           "  {\"batch\": 64, \"events_per_sec\": 1.8e6, \"speedup\": 1.8}\n]}\n";
  }
  const RunResult self_diff = run_cli("diff --bench " + base + " " + base);
  EXPECT_EQ(self_diff.exit_code, 0) << self_diff.output;
  const RunResult gate = run_cli("diff --bench " + base + " " + slow);
  EXPECT_EQ(gate.exit_code, 3) << gate.output;
  EXPECT_NE(gate.output.find("REGRESSED"), std::string::npos) << gate.output;
  // A wider tolerance waves the same pair through.
  const RunResult loose =
      run_cli("diff --bench --threshold=0.5 " + base + " " + slow);
  EXPECT_EQ(loose.exit_code, 0) << loose.output;
  std::remove(base.c_str());
  std::remove(slow.c_str());
}

TEST(CliRecorder, DiffRejectsMixedAndUnknownFormats) {
  const std::string m = "/tmp/commscope_cli_mixed.matrix";
  const std::string e = "/tmp/commscope_cli_mixed.epochs";
  ASSERT_EQ(run_cli("run fft --threads=4 -q --save-matrix=" + m +
                    " --epoch-every=2000 --epochs-out=" + e).exit_code,
            0);
  const RunResult mixed = run_cli("diff " + m + " " + e);
  EXPECT_EQ(mixed.exit_code, 1) << mixed.output;
  EXPECT_NE(mixed.output.find("cannot compare"), std::string::npos);
  const std::string junk = "/tmp/commscope_cli_junk.txt";
  {
    std::ofstream out(junk);
    out << "hello world\n";
  }
  const RunResult unknown = run_cli("diff " + junk + " " + junk);
  EXPECT_EQ(unknown.exit_code, 1) << unknown.output;
  std::remove(m.c_str());
  std::remove(e.c_str());
  std::remove(junk.c_str());
}

// --- profile-as-a-service: serve -------------------------------------------

TEST(CliServe, MissingSocketIsUsageError) {
  const RunResult r = run_cli("serve");
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("--socket"), std::string::npos);
}

TEST(CliServe, UnbindableSocketPathFailsWithDiagnostic) {
  const RunResult r =
      run_cli("serve --socket=/nonexistent_dir_zz9/commscope.sock");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("commscope:"), std::string::npos);
}

TEST(CliServe, ScrapeAgainstDeadDaemonFails) {
  const RunResult r =
      run_cli("serve --socket=/tmp/commscope_cli_nobody.sock --scrape");
  EXPECT_EQ(r.exit_code, 1) << r.output;
}

TEST(CliServe, RunShipsToDaemonAndMergedTimelineRenders) {
  const std::string socket = "/tmp/commscope_cli_serve.sock";
  const std::string merged = "/tmp/commscope_cli_serve.epochs";
  const std::string metrics = "/tmp/commscope_cli_serve.metrics";
  std::remove(socket.c_str());

  // Background daemon: exits on its own once the single shipped session
  // disconnects; --timeout is the watchdog backstop so a failure here can't
  // hang the suite. The shipper's retry/backoff absorbs the startup race.
  const std::string daemon_cmd =
      g_cli + " serve --socket=" + socket + " --sessions=1 -q" +
      " --epochs-out=" + merged + " --metrics-out=" + metrics +
      " --timeout=30 2>/dev/null &";
  ASSERT_EQ(std::system(daemon_cmd.c_str()), 0);

  const RunResult run = run_cli("run fft --threads=4 --epoch-every=2000"
                                " --ship-to=" + socket + " --ship-session=77");
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_NE(run.output.find("shipped"), std::string::npos) << run.output;

  // Wait for the daemon to notice the disconnect, seal, and write outputs.
  RunResult report;
  for (int i = 0; i < 100; ++i) {
    report = run_cli("report " + merged);
    if (report.exit_code == 0) break;
    std::system("sleep 0.1");
  }
  EXPECT_EQ(report.exit_code, 0) << report.output;
  EXPECT_NE(report.output.find("surviving"), std::string::npos);

  std::ifstream min(metrics);
  ASSERT_TRUE(min.good()) << "daemon wrote no metrics snapshot";
  std::stringstream mbuf;
  mbuf << min.rdbuf();
  EXPECT_NE(mbuf.str().find("serve.epochs.merged"), std::string::npos);
  std::remove(merged.c_str());
  std::remove(metrics.c_str());
}

TEST(CliServe, BogusFsyncPolicyIsUsageError) {
  const RunResult r =
      run_cli("serve --socket=/tmp/commscope_cli_fsync.sock --fsync=bogus");
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("per-ack"), std::string::npos) << r.output;
}

TEST(CliServe, SignalDrainExitsZeroAndLeavesSnapshot) {
  // SIGTERM and SIGINT both request a graceful drain: seal sessions, final
  // snapshot, exit 0 — the exit-code contract systemd/K8s stop paths rely
  // on. A non-zero exit here means the handler path regressed to the
  // default die-by-signal disposition.
  for (const std::string sig : {"TERM", "INT"}) {
    const std::string socket = "/tmp/commscope_cli_drain_" + sig + ".sock";
    const std::string state = "/tmp/commscope_cli_drain_" + sig + ".state";
    const std::string status = state + ".exit";
    std::remove(socket.c_str());
    std::remove(status.c_str());
    std::remove((state + "/wal.log").c_str());
    std::remove((state + "/snapshot.commscope").c_str());
    const std::string script =
        g_cli + " serve --socket=" + socket + " --state-dir=" + state +
        " -q 2>/dev/null & pid=$!; i=0;"
        " while [ ! -S " + socket + " ] && [ $i -lt 50 ];"
        " do sleep 0.1; i=$((i+1)); done;"
        " kill -" + sig + " $pid; wait $pid; echo $? > " + status;
    ASSERT_EQ(std::system(script.c_str()), 0);
    std::ifstream in(status);
    std::string code;
    in >> code;
    EXPECT_EQ(code, "0") << "SIG" << sig << " drain exit code";
    std::ifstream snap(state + "/snapshot.commscope");
    EXPECT_TRUE(snap.good()) << "drain left no final snapshot (" << sig
                             << ")";
    std::remove(status.c_str());
  }
}

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  if (argc > 1) {
    g_cli = argv[1];
  } else {
    g_cli = "./build/tools/commscope";  // manual-invocation fallback
  }
  return RUN_ALL_TESTS();
}
