// Schedule-fuzzing stress harness tests: the differential self-verification
// contract (guarded pipeline == serial shadow oracle, cell-for-cell), seeded
// determinism, thread churn through the registry, and mirrored sampling.
// Scenario sizes are kept small — this suite doubles as the `ctest -L
// stress` tier-1 smoke and must stay fast on a single-core runner; the CLI
// (`commscope stress`) runs the full acceptance grid.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <functional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/profiler.hpp"
#include "resilience/guarded_sink.hpp"
#include "resilience/stress.hpp"
#include "serve/server.hpp"
#include "serve/shipper.hpp"
#include "threading/registry.hpp"
#include "telemetry/trace.hpp"

namespace cc = commscope::core;
namespace ci = commscope::instrument;
namespace cr = commscope::resilience;
namespace ct = commscope::threading;
namespace ctl = commscope::telemetry;
namespace sv = commscope::serve;

namespace {

cr::StressOptions small_options(cr::StressMode mode) {
  cr::StressOptions o;
  o.seed = 7;
  o.threads = 4;
  o.steps = 800;
  o.mode = mode;
  o.checkpoint_every = 64;  // force the safepoint gate frequently
  return o;
}

}  // namespace

TEST(Stress, LockstepMatchesOracleWithChurn) {
  const int leases_before = ct::ThreadRegistry::registered_count();
  const cr::StressReport r = cr::run_stress(small_options(cr::StressMode::kLockstep));
  EXPECT_TRUE(r.passed);
  EXPECT_EQ(r.divergent_cells, 0u);
  EXPECT_TRUE(r.deterministic);
  EXPECT_GT(r.accesses, 0u);
  EXPECT_GT(r.churns, 0u);  // thread exit/respawn really happened
  EXPECT_EQ(r.guarded_total, r.oracle_total);
  EXPECT_EQ(r.reentrant_drops, 0u);
  // Every lane plus every churn replacement took a registry lease (twice:
  // the determinism re-run), and all of them were reclaimed.
  EXPECT_GT(ct::ThreadRegistry::registered_count(), leases_before);
}

TEST(Stress, FreeRunMatchesOracleUnderRealConcurrency) {
  const cr::StressReport r = cr::run_stress(small_options(cr::StressMode::kFree));
  EXPECT_TRUE(r.passed);
  EXPECT_EQ(r.divergent_cells, 0u);
  EXPECT_TRUE(r.deterministic);
  EXPECT_EQ(r.churns, 0u);  // churn is a lockstep-only ingredient
  EXPECT_GT(r.guarded_total, 0u);
}

TEST(Stress, DistinctSeedsProduceDistinctSchedules) {
  cr::StressOptions a = small_options(cr::StressMode::kLockstep);
  a.verify_determinism = false;
  cr::StressOptions b = a;
  b.seed = a.seed + 1;
  const cr::StressReport ra = cr::run_stress(a);
  const cr::StressReport rb = cr::run_stress(b);
  EXPECT_TRUE(ra.passed);
  EXPECT_TRUE(rb.passed);
  // Not a hard guarantee, but with 800 steps two seeds colliding on the
  // exact communicated volume would indicate the seed is being ignored.
  EXPECT_NE(ra.guarded_total, rb.guarded_total);
}

TEST(Stress, MirroredSamplingStaysExact) {
  for (const auto mode : {cr::StressMode::kLockstep, cr::StressMode::kFree}) {
    cr::StressOptions o = small_options(mode);
    o.sampling = 0.25;
    const cr::StressReport r = cr::run_stress(o);
    EXPECT_TRUE(r.passed) << "mode=" << cr::to_string(mode);
    EXPECT_EQ(r.divergent_cells, 0u);
  }
}

TEST(Stress, BatchedRunsMatchOracleAtEveryBatchSize) {
  // The harness drains micro-batches at its ordering points (lockstep lane
  // hand-offs, free-mode barriers), so the serial oracle comparison must stay
  // cell-exact at any batch size — including sizes smaller than a lane's
  // longest run, which force batch-full flushes mid-run.
  for (const auto mode : {cr::StressMode::kLockstep, cr::StressMode::kFree}) {
    for (const std::uint32_t batch : {4u, 64u}) {
      cr::StressOptions o = small_options(mode);
      o.batch = batch;
      const cr::StressReport r = cr::run_stress(o);
      EXPECT_TRUE(r.passed)
          << "mode=" << cr::to_string(mode) << " batch=" << batch;
      EXPECT_EQ(r.divergent_cells, 0u);
      EXPECT_EQ(r.guarded_total, r.oracle_total);
      EXPECT_TRUE(r.deterministic);
    }
  }
}

TEST(Stress, BatchedSamplingStaysExact) {
  for (const auto mode : {cr::StressMode::kLockstep, cr::StressMode::kFree}) {
    cr::StressOptions o = small_options(mode);
    o.sampling = 0.25;
    o.batch = 64;
    const cr::StressReport r = cr::run_stress(o);
    EXPECT_TRUE(r.passed) << "mode=" << cr::to_string(mode);
    EXPECT_EQ(r.divergent_cells, 0u);
  }
}

TEST(Stress, SweepCoversSeedByThreadGrid) {
  cr::StressOptions base;
  base.steps = 400;
  std::ostringstream os;
  const bool ok = cr::run_stress_sweep({1, 2}, {2, 3}, base, os);
  EXPECT_TRUE(ok);
  // 2 seeds x 2 thread counts x 2 modes = 8 result lines, all PASS.
  std::size_t lines = 0;
  std::size_t passes = 0;
  std::string line;
  std::istringstream is(os.str());
  while (std::getline(is, line)) {
    ++lines;
    if (line.find(" PASS") != std::string::npos) ++passes;
  }
  EXPECT_EQ(lines, 8u);
  EXPECT_EQ(passes, 8u);
}

TEST(Stress, RejectsOutOfRangeOptions) {
  cr::StressOptions o;
  o.threads = 0;
  EXPECT_THROW((void)cr::run_stress(o), std::invalid_argument);
  o = {};
  o.threads = 65;
  EXPECT_THROW((void)cr::run_stress(o), std::invalid_argument);
  o = {};
  o.sampling = 0.0;
  EXPECT_THROW((void)cr::run_stress(o), std::invalid_argument);
  o = {};
  o.steps = 0;
  EXPECT_THROW((void)cr::run_stress(o), std::invalid_argument);
  o = {};
  o.words = 0;
  EXPECT_THROW((void)cr::run_stress(o), std::invalid_argument);
  o = {};
  o.batch = cc::kMaxBatchSize + 1;
  EXPECT_THROW((void)cr::run_stress(o), std::invalid_argument);
}

// --- micro-batch flush ordering through the guarded pipeline ---------------
//
// The batched ingest pipeline buffers admitted accesses per thread; every
// lifecycle edge that could observe or discard profiler state must drain
// those buffers first. Each test pins one edge: explicit flush (the same
// path the atexit/fork/signal-time hooks take), periodic checkpoints, the
// registry flush hooks themselves, and thread exit.

namespace {

cc::ProfilerOptions batched_profiler_options() {
  cc::ProfilerOptions o;
  o.max_threads = 8;
  o.signature_slots = 1 << 16;
  o.batch_size = 64;
  return o;
}

}  // namespace

TEST(FlushOrdering, GuardedFlushDrainsPendingBatches) {
  cc::Profiler prof(batched_profiler_options());
  cr::GuardedSink::Options so;
  so.checkpoint_every = 1 << 20;  // gate on; no periodic firing at this scale
  cr::GuardedSink sink(prof, nullptr, so);
  sink.on_thread_begin(0);
  sink.on_thread_begin(1);
  sink.on_access(0, 0x5000, 8, ci::AccessKind::kWrite);
  sink.on_access(1, 0x5000, 8, ci::AccessKind::kRead);
  EXPECT_EQ(prof.pending_events(0), 1u);
  EXPECT_EQ(prof.pending_events(1), 1u);
  EXPECT_EQ(prof.stats().accesses, 0u);
  // flush() — the path exit()/fork()/signal-time snapshots take — must stop
  // the world and drain every micro-batch before serializing.
  sink.flush();
  EXPECT_EQ(prof.pending_events(0), 0u);
  EXPECT_EQ(prof.pending_events(1), 0u);
  EXPECT_EQ(prof.stats().accesses, 2u);
  EXPECT_EQ(prof.stats().dependencies, 1u);  // drained in tid order: w then r
}

TEST(FlushOrdering, PeriodicCheckpointDrainsBatch) {
  cc::Profiler prof(batched_profiler_options());
  cr::GuardedSink::Options so;
  so.checkpoint_every = 8;  // no checkpoint_path: serialize/publish only
  cr::GuardedSink sink(prof, nullptr, so);
  sink.on_thread_begin(0);
  for (int i = 0; i < 8; ++i) {
    sink.on_access(0, 0x6000u + 8u * static_cast<unsigned>(i), 8,
                   ci::AccessKind::kWrite);
  }
  // Maintenance fires inside the 8th event's prologue, BEFORE that event
  // reaches the profiler: the checkpoint covers the 7 already-admitted
  // accesses and the 8th lands in the (now empty) batch afterwards.
  EXPECT_EQ(prof.stats().accesses, 7u);
  EXPECT_EQ(prof.pending_events(0), 1u);
}

TEST(FlushOrdering, RegistryFlushHooksDrainActiveSink) {
  cc::Profiler prof(batched_profiler_options());
  cr::GuardedSink::Options so;
  so.checkpoint_every = 1 << 20;
  cr::GuardedSink sink(prof, nullptr, so);
  sink.on_thread_begin(0);
  sink.on_access(0, 0x7000, 8, ci::AccessKind::kWrite);
  EXPECT_EQ(prof.pending_events(0), 1u);
  // The registered flush hooks are exactly what atexit and pthread_atfork
  // run; invoking them directly proves buffered state reaches the sink even
  // when the process exits or forks mid-phase.
  ct::ThreadRegistry::run_flush_hooks();
  EXPECT_EQ(prof.pending_events(0), 0u);
  EXPECT_EQ(prof.stats().accesses, 1u);
}

#if !defined(COMMSCOPE_TELEMETRY_DISABLED)

// Epoch ring under thread churn: waves of real threads hammer the profiler
// (cross-thread RAW traffic included) with an aggressive seal trigger and a
// tiny ring, with every thread replaced between waves. Whatever the
// interleaving, the overwrite-and-count contract must hold exactly:
// sealed == dropped + surviving, surviving indices consecutive and newest.
TEST(FlushOrdering, EpochRingInvariantsHoldUnderThreadChurn) {
  cc::ProfilerOptions po = batched_profiler_options();
  po.epoch_accesses = 64;  // dozens of seals across the run
  po.epoch_ring = 4;       // force overwrites
  cc::Profiler prof(po);
  constexpr int kLanes = 4;
  for (int wave = 0; wave < 3; ++wave) {  // churn: fresh threads each wave
    std::vector<std::thread> lanes;
    for (int t = 0; t < kLanes; ++t) {
      lanes.emplace_back([&prof, t, wave] {
        (void)ct::ThreadRegistry::current_tid();
        prof.on_thread_begin(t);
        for (int i = 0; i < 400; ++i) {
          const auto addr = 0x9000u + 8u * static_cast<unsigned>(i % 32);
          prof.on_access(t, addr, 8,
                         (i + t + wave) % 3 == 0 ? ci::AccessKind::kWrite
                                                 : ci::AccessKind::kRead);
        }
        prof.on_drain(t);
      });
    }
    for (std::thread& th : lanes) th.join();
  }
  prof.finalize();

  const cc::EpochTimeline t = prof.epoch_timeline();
  ASSERT_FALSE(t.epochs.empty());
  EXPECT_EQ(t.sealed, t.dropped + t.epochs.size());
  EXPECT_GT(t.dropped, 0u) << "ring never overwrote; trigger too lax";
  EXPECT_LE(t.epochs.size(), 4u);
  // Surviving epochs are the newest, consecutively numbered, oldest first.
  EXPECT_EQ(t.epochs.back().index + 1, t.sealed);
  for (std::size_t i = 1; i < t.epochs.size(); ++i) {
    EXPECT_EQ(t.epochs[i].index, t.epochs[i - 1].index + 1);
    EXPECT_GE(t.epochs[i].first_access, t.epochs[i - 1].last_access);
  }
  for (const cc::EpochSample& e : t.epochs) {
    EXPECT_LE(e.first_access, e.last_access);
    std::uint64_t cell_sum = 0;
    for (const cc::EpochCell& c : e.cells) cell_sum += c.bytes;
    EXPECT_EQ(cell_sum, e.bytes) << "epoch " << e.index;
  }
}

// Every trace record since enable() either occupies a ring slot, overwrote
// one (counted in dropped), or spilled past the ring table (also counted).
// Thread churn is the hostile case: each fresh OS thread claims a fresh
// ring, so waves of short-lived threads spread the same event count across
// many rings without ever breaking the accounting identity.
TEST(TraceRing, OverwriteAndCountInvariantsHoldUnderThreadChurn) {
  ctl::Tracer::enable();
  constexpr int kWaves = 3;
  constexpr int kLanes = 6;
  constexpr int kPerThread = 3000;  // > ring capacity: forces overwrites
  for (int wave = 0; wave < kWaves; ++wave) {
    std::vector<std::thread> lanes;
    for (int t = 0; t < kLanes; ++t) {
      lanes.emplace_back([t] {
        for (int i = 0; i < kPerThread; ++i) {
          ctl::Tracer::instant("churn", ctl::SpanCat::kRun, t);
        }
      });
    }
    for (std::thread& th : lanes) th.join();
  }
  ctl::Tracer::disable();

  constexpr std::uint64_t kTotal =
      static_cast<std::uint64_t>(kWaves) * kLanes * kPerThread;
  const std::uint64_t captured = ctl::Tracer::captured();
  const std::uint64_t dropped = ctl::Tracer::dropped();
  EXPECT_EQ(captured + dropped, kTotal)
      << "a record was neither kept, overwritten nor counted as spilled";
  EXPECT_GT(dropped, 0u) << "churn never overflowed a ring; load too light";
  // Each of the kWaves * kLanes short-lived threads burned its own ring.
  EXPECT_LE(captured,
            static_cast<std::uint64_t>(kWaves) * kLanes * 2048u);
}

// The reap path runs on the daemon thread while churning client threads
// hammer the same trace rings: the daemon must reap the silent session
// without losing its merged contribution, and the ring accounting must
// survive the concurrent load.
TEST(TraceRing, ServeSessionReapUnderChurnKeepsDaemonConsistent) {
  ctl::Tracer::enable();
  const std::string socket =
      "/tmp/cs_stress_reap_" + std::to_string(::getpid()) + ".sock";
  sv::ServeOptions o;
  o.socket_path = socket;
  o.poll_ms = 5;
  o.reap_ms = 40;
  sv::ServeServer server(o);
  ASSERT_TRUE(server.open());
  std::thread daemon([&server] { server.run(); });

  std::atomic<bool> stop{false};
  std::vector<std::thread> churn;
  for (int t = 0; t < 4; ++t) {
    churn.emplace_back([&stop, t] {
      while (!stop.load(std::memory_order_relaxed)) {
        ctl::Tracer::instant("churn.reap", ctl::SpanCat::kRun, t);
      }
    });
  }

  // One client ships a single epoch and goes silent: no bye, no heartbeat.
  cc::EpochTimeline truth;
  truth.threads = 2;
  truth.sealed = 1;
  cc::EpochSample e;
  e.index = 0;
  e.first_access = 0;
  e.last_access = 9;
  cc::EpochCell cell;
  cell.producer = 0;
  cell.consumer = 1;
  cell.bytes = 64;
  e.bytes = 64;
  e.cells.push_back(cell);
  e.dependencies = 1;
  truth.epochs.push_back(e);
  sv::ShipperOptions so;
  so.socket_path = socket;
  so.spill_path = socket + ".spill.epochs";
  so.session_id = 17;
  so.threads = 2;
  {
    sv::EpochShipper s(so);
    ASSERT_TRUE(s.ship(truth));
  }  // destroyed without bye(): the heartbeat timeout must reap it

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (server.snapshot().sessions_reaped == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& th : churn) th.join();
  server.stop();
  daemon.join();
  ctl::Tracer::disable();

  const sv::ServeStats st = server.snapshot();
  EXPECT_GE(st.sessions_reaped, 1u) << "silent session was never reaped";
  EXPECT_EQ(st.epochs_merged, 1u) << "reap lost the merged contribution";
  EXPECT_LE(ctl::Tracer::captured(), 80u * 2048u);
  EXPECT_GT(ctl::Tracer::dropped(), 0u)
      << "churn spun for the whole reap window yet never wrapped a ring";
  std::remove(so.spill_path.c_str());
}

#endif  // !COMMSCOPE_TELEMETRY_DISABLED

TEST(FlushOrdering, ThreadExitDrainsOwnMicroBatch) {
  cc::Profiler prof(batched_profiler_options());
  cr::GuardedSink sink(prof, nullptr, {});
  std::thread worker([&] {
    // Lease a registry slot so the thread-exit hook runs for this thread.
    (void)ct::ThreadRegistry::current_tid();
    sink.on_thread_begin(2);
    for (int i = 0; i < 3; ++i) {
      sink.on_access(2, 0x8000u + 8u * static_cast<unsigned>(i), 8,
                     ci::AccessKind::kWrite);
    }
    EXPECT_EQ(prof.pending_events(2), 3u);
  });
  worker.join();
  // The exiting thread drained its own batch (logical tid 2) on the way out.
  EXPECT_EQ(prof.pending_events(2), 0u);
  EXPECT_EQ(prof.stats().accesses, 3u);
}
