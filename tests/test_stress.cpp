// Schedule-fuzzing stress harness tests: the differential self-verification
// contract (guarded pipeline == serial shadow oracle, cell-for-cell), seeded
// determinism, thread churn through the registry, and mirrored sampling.
// Scenario sizes are kept small — this suite doubles as the `ctest -L
// stress` tier-1 smoke and must stay fast on a single-core runner; the CLI
// (`commscope stress`) runs the full acceptance grid.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "resilience/stress.hpp"
#include "threading/registry.hpp"

namespace cr = commscope::resilience;
namespace ct = commscope::threading;

namespace {

cr::StressOptions small_options(cr::StressMode mode) {
  cr::StressOptions o;
  o.seed = 7;
  o.threads = 4;
  o.steps = 800;
  o.mode = mode;
  o.checkpoint_every = 64;  // force the safepoint gate frequently
  return o;
}

}  // namespace

TEST(Stress, LockstepMatchesOracleWithChurn) {
  const int leases_before = ct::ThreadRegistry::registered_count();
  const cr::StressReport r = cr::run_stress(small_options(cr::StressMode::kLockstep));
  EXPECT_TRUE(r.passed);
  EXPECT_EQ(r.divergent_cells, 0u);
  EXPECT_TRUE(r.deterministic);
  EXPECT_GT(r.accesses, 0u);
  EXPECT_GT(r.churns, 0u);  // thread exit/respawn really happened
  EXPECT_EQ(r.guarded_total, r.oracle_total);
  EXPECT_EQ(r.reentrant_drops, 0u);
  // Every lane plus every churn replacement took a registry lease (twice:
  // the determinism re-run), and all of them were reclaimed.
  EXPECT_GT(ct::ThreadRegistry::registered_count(), leases_before);
}

TEST(Stress, FreeRunMatchesOracleUnderRealConcurrency) {
  const cr::StressReport r = cr::run_stress(small_options(cr::StressMode::kFree));
  EXPECT_TRUE(r.passed);
  EXPECT_EQ(r.divergent_cells, 0u);
  EXPECT_TRUE(r.deterministic);
  EXPECT_EQ(r.churns, 0u);  // churn is a lockstep-only ingredient
  EXPECT_GT(r.guarded_total, 0u);
}

TEST(Stress, DistinctSeedsProduceDistinctSchedules) {
  cr::StressOptions a = small_options(cr::StressMode::kLockstep);
  a.verify_determinism = false;
  cr::StressOptions b = a;
  b.seed = a.seed + 1;
  const cr::StressReport ra = cr::run_stress(a);
  const cr::StressReport rb = cr::run_stress(b);
  EXPECT_TRUE(ra.passed);
  EXPECT_TRUE(rb.passed);
  // Not a hard guarantee, but with 800 steps two seeds colliding on the
  // exact communicated volume would indicate the seed is being ignored.
  EXPECT_NE(ra.guarded_total, rb.guarded_total);
}

TEST(Stress, MirroredSamplingStaysExact) {
  for (const auto mode : {cr::StressMode::kLockstep, cr::StressMode::kFree}) {
    cr::StressOptions o = small_options(mode);
    o.sampling = 0.25;
    const cr::StressReport r = cr::run_stress(o);
    EXPECT_TRUE(r.passed) << "mode=" << cr::to_string(mode);
    EXPECT_EQ(r.divergent_cells, 0u);
  }
}

TEST(Stress, SweepCoversSeedByThreadGrid) {
  cr::StressOptions base;
  base.steps = 400;
  std::ostringstream os;
  const bool ok = cr::run_stress_sweep({1, 2}, {2, 3}, base, os);
  EXPECT_TRUE(ok);
  // 2 seeds x 2 thread counts x 2 modes = 8 result lines, all PASS.
  std::size_t lines = 0;
  std::size_t passes = 0;
  std::string line;
  std::istringstream is(os.str());
  while (std::getline(is, line)) {
    ++lines;
    if (line.find(" PASS") != std::string::npos) ++passes;
  }
  EXPECT_EQ(lines, 8u);
  EXPECT_EQ(passes, 8u);
}

TEST(Stress, RejectsOutOfRangeOptions) {
  cr::StressOptions o;
  o.threads = 0;
  EXPECT_THROW((void)cr::run_stress(o), std::invalid_argument);
  o = {};
  o.threads = 65;
  EXPECT_THROW((void)cr::run_stress(o), std::invalid_argument);
  o = {};
  o.sampling = 0.0;
  EXPECT_THROW((void)cr::run_stress(o), std::invalid_argument);
  o = {};
  o.steps = 0;
  EXPECT_THROW((void)cr::run_stress(o), std::invalid_argument);
  o = {};
  o.words = 0;
  EXPECT_THROW((void)cr::run_stress(o), std::invalid_argument);
}
