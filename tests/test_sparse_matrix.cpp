// Sparse communication-matrix tests: snapshot equivalence with the dense
// accumulator, concurrency, memory scaling with occupied pairs, and the
// profiler-level sparse_region_matrices option.
#include <gtest/gtest.h>

#include <memory>
#include <thread>

#include "core/profiler.hpp"
#include "core/sparse_matrix.hpp"
#include "threading/thread_pool.hpp"
#include "workloads/workload.hpp"

namespace cc = commscope::core;
namespace ci = commscope::instrument;
namespace cs = commscope::support;
namespace ct = commscope::threading;
namespace cw = commscope::workloads;

TEST(SparseCommMatrix, SnapshotMatchesDenseForSameAdds) {
  cc::CommMatrix dense(8);
  cc::SparseCommMatrix sparse(8);
  std::uint64_t state = 3;
  for (int i = 0; i < 10000; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    const int p = static_cast<int>((state >> 40) % 8);
    const int c = static_cast<int>((state >> 20) % 8);
    const std::uint64_t b = (state & 0xff) + 1;
    dense.add(p, c, b);
    sparse.add(p, c, b);
  }
  EXPECT_EQ(dense.snapshot(), sparse.snapshot());
}

TEST(SparseCommMatrix, EmptyIsAllZero) {
  cc::SparseCommMatrix m(16);
  EXPECT_EQ(m.cell_count(), 0u);
  EXPECT_EQ(m.byte_size(), 0u);
  EXPECT_EQ(m.snapshot().total(), 0u);
}

TEST(SparseCommMatrix, MemoryScalesWithOccupiedPairsNotSize) {
  // A 64-thread band pattern touches ~126 pairs; the sparse store must cost
  // a small fraction of the 64*64*8 = 32 KiB dense matrix.
  cc::SparseCommMatrix m(64);
  for (int i = 0; i + 1 < 64; ++i) {
    m.add(i, i + 1, 100);
    m.add(i + 1, i, 100);
  }
  EXPECT_EQ(m.cell_count(), 126u);
  EXPECT_LT(m.byte_size(), cc::CommMatrix::byte_size(64) / 4);
}

TEST(SparseCommMatrix, RepeatAddsDoNotGrowStorage) {
  cc::SparseCommMatrix m(4);
  for (int i = 0; i < 1000; ++i) m.add(0, 1, 1);
  EXPECT_EQ(m.cell_count(), 1u);
  EXPECT_EQ(m.snapshot().at(0, 1), 1000u);
}

TEST(SparseCommMatrix, TrackerChargedPerCellAndReleasedOnReset) {
  cs::MemoryTracker tracker;
  cc::SparseCommMatrix m(8, &tracker);
  m.add(0, 1, 5);
  m.add(2, 3, 5);
  EXPECT_EQ(tracker.current(), 2 * cc::SparseCommMatrix::kCellBytes);
  m.reset();
  EXPECT_EQ(tracker.current(), 0u);
  EXPECT_EQ(m.snapshot().total(), 0u);
}

TEST(SparseCommMatrix, ConcurrentAddsLoseNothing) {
  cc::SparseCommMatrix m(8);
  constexpr int kThreads = 4;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&m, t] {
      for (int i = 0; i < kIters; ++i) m.add(t, (t + 1 + i % 3) % 8, 1);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(m.snapshot().total(),
            static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(SparseCommMatrix, RejectsNonPositiveSize) {
  EXPECT_THROW(cc::SparseCommMatrix(0), std::invalid_argument);
}

// --- profiler integration ----------------------------------------------------

namespace {

/// Drives a profiler with a deterministic serial event stream: a band
/// pattern spread over several loop regions at `threads` matrix dimension.
std::unique_ptr<cc::Profiler> drive_synthetic(int threads, bool sparse_flag) {
  cc::ProfilerOptions o;
  o.max_threads = threads;
  o.backend = cc::Backend::kExact;
  o.sparse_region_matrices = sparse_flag;
  auto prof = std::make_unique<cc::Profiler>(o);
  static const ci::LoopId loops[3] = {
      ci::LoopRegistry::instance().declare("sparse_test", "a"),
      ci::LoopRegistry::instance().declare("sparse_test", "b"),
      ci::LoopRegistry::instance().declare("sparse_test", "c")};
  for (int t = 0; t < threads; ++t) prof->on_thread_begin(t);
  std::uintptr_t addr = 0x40000;
  for (int round = 0; round < 3; ++round) {
    for (int p = 0; p < threads; ++p) {
      const int c = (p + 1) % threads;
      prof->on_loop_enter(c, loops[round]);
      prof->on_access(p, addr, 8, ci::AccessKind::kWrite);
      prof->on_access(c, addr, 8, ci::AccessKind::kRead);
      prof->on_loop_exit(c);
      addr += 8;
    }
  }
  return prof;
}

}  // namespace

TEST(SparseRegionMatrices, ProfileMatchesDenseProfile) {
  // Workload runs have timing-dependent barrier-flag races, so equality is
  // asserted on an identical deterministic event stream instead.
  const auto dense = drive_synthetic(4, false);
  const auto sparse = drive_synthetic(4, true);
  EXPECT_EQ(dense->communication_matrix(), sparse->communication_matrix());
  EXPECT_EQ(dense->regions().node_count(), sparse->regions().node_count());
  EXPECT_TRUE(sparse->regions().root().matrix().is_sparse());
  EXPECT_FALSE(dense->regions().root().matrix().is_sparse());
  for (const cc::RegionNode* node : sparse->regions().preorder()) {
    EXPECT_TRUE(node->matrix().is_sparse());
  }
}

TEST(SparseRegionMatrices, SavesRegionMemoryAtHighThreadCounts) {
  // 64-thread matrices, band traffic over 4 region nodes: sparse stores a
  // handful of cells where dense pays 32 KiB per node.
  const auto dense = drive_synthetic(64, false);
  const auto sparse = drive_synthetic(64, true);
  EXPECT_EQ(dense->communication_matrix(), sparse->communication_matrix());
  EXPECT_LT(sparse->memory_bytes(), dense->memory_bytes());
}

TEST(SparseRegionMatrices, RealWorkloadVolumeAgreesWithinBarrierJitter) {
  // End-to-end sanity on a real run: totals match within the (small) racy
  // barrier-flag traffic.
  ct::ThreadTeam team(4);
  const cw::Workload* w = cw::find("ocean_cp");
  cc::ProfilerOptions o;
  o.max_threads = 4;
  o.backend = cc::Backend::kExact;
  auto dense = std::make_unique<cc::Profiler>(o);
  ASSERT_TRUE(w->run(cw::Scale::kDev, team, dense.get()).ok);
  o.sparse_region_matrices = true;
  auto sparse = std::make_unique<cc::Profiler>(o);
  ASSERT_TRUE(w->run(cw::Scale::kDev, team, sparse.get()).ok);
  const auto a = static_cast<double>(dense->communication_matrix().total());
  const auto b = static_cast<double>(sparse->communication_matrix().total());
  EXPECT_NEAR(b / a, 1.0, 0.02);
}
