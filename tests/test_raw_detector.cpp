// Algorithm 1 tests over the asymmetric signature memory: the dependence
// rules, the first-touch (false-positive-communication) suppression, the
// equivalence with the exact baseline when the signature is ample, and the
// collision behaviour when it is not.
#include <gtest/gtest.h>

#include <atomic>
#include <optional>
#include <thread>
#include <vector>

#include "core/raw_detector.hpp"
#include "sigmem/exact_signature.hpp"

namespace cc = commscope::core;
namespace sg = commscope::sigmem;

namespace {
constexpr std::size_t kAmpleSlots = 1 << 16;
}

TEST(AsymmetricDetector, DetectsBasicRaw) {
  cc::AsymmetricDetector det(kAmpleSlots, 8, 0.001);
  det.on_write(0x1000, 0);
  const std::optional<int> p = det.on_read(0x1000, 1);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(*p, 0);
}

TEST(AsymmetricDetector, FirstTouchOnlyCountsOnce) {
  // Section V.A.5: "only first time access by a thread is counted as a
  // communication" — re-reads by the same consumer are suppressed.
  cc::AsymmetricDetector det(kAmpleSlots, 8, 0.001);
  det.on_write(0x2000, 0);
  EXPECT_TRUE(det.on_read(0x2000, 1).has_value());
  EXPECT_FALSE(det.on_read(0x2000, 1).has_value());
  EXPECT_FALSE(det.on_read(0x2000, 1).has_value());
}

TEST(AsymmetricDetector, SelfReadSuppressed) {
  cc::AsymmetricDetector det(kAmpleSlots, 8, 0.001);
  det.on_write(0x3000, 2);
  EXPECT_FALSE(det.on_read(0x3000, 2).has_value());
}

TEST(AsymmetricDetector, NewWriteReopensDependency) {
  // Algorithm 1 clears the slot's bloom filter on every write, so a fresh
  // producing write is consumable again by every reader.
  cc::AsymmetricDetector det(kAmpleSlots, 8, 0.001);
  det.on_write(0x4000, 0);
  EXPECT_TRUE(det.on_read(0x4000, 1).has_value());
  det.on_write(0x4000, 2);
  const auto p = det.on_read(0x4000, 1);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(*p, 2);
}

TEST(AsymmetricDetector, ReadWithNoPriorWriteIsSilent) {
  cc::AsymmetricDetector det(kAmpleSlots, 8, 0.001);
  EXPECT_FALSE(det.on_read(0x5000, 1).has_value());
}

TEST(AsymmetricDetector, EarlyReadMasksLaterRawOnSameSlot) {
  // Documented approximation: a read inserted into the read signature
  // *before* any write stays there until a write clears the slot — but a
  // write does clear it, so the dependence after the write is still seen.
  cc::AsymmetricDetector det(kAmpleSlots, 8, 0.001);
  EXPECT_FALSE(det.on_read(0x6000, 1).has_value());
  det.on_write(0x6000, 0);  // clears the bloom, records writer
  EXPECT_TRUE(det.on_read(0x6000, 1).has_value());
}

TEST(AsymmetricDetector, WarAndRarDoNotCommunicate) {
  cc::AsymmetricDetector det(kAmpleSlots, 8, 0.001);
  det.on_write(0x7000, 0);
  det.on_write(0x7000, 1);          // WAW/WAR: no dependency reported
  EXPECT_FALSE(det.on_read(0x8000, 2).has_value());  // RAR on untouched addr
  const auto p = det.on_read(0x7000, 2);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(*p, 1);  // last writer wins
}

TEST(AsymmetricDetector, MatchesExactBaselineWithAmpleSlots) {
  // Replay an identical pseudo-random serial access stream through both
  // detectors; with slots >> distinct addresses (no slot collisions among
  // the 512 live addresses) and a 1e-9 bloom FP target, every verdict must
  // match. The stream is deterministic, so this is a stable check, not a
  // probabilistic one.
  cc::AsymmetricDetector det(1 << 22, 8, 1e-9);
  sg::ExactSignature exact(8);
  std::uint64_t state = 42;
  int dependencies = 0;
  for (int i = 0; i < 20000; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    const std::uintptr_t addr = 0x10000 + (state >> 33) % 512 * 8;
    const int tid = static_cast<int>((state >> 20) % 8);
    const bool is_write = ((state >> 10) & 3) == 0;  // 25% writes
    if (is_write) {
      det.on_write(addr, tid);
      exact.on_write(addr, tid);
    } else {
      const auto a = det.on_read(addr, tid);
      const auto b = exact.on_read(addr, tid);
      EXPECT_EQ(a, b) << "iteration " << i;
      dependencies += a.has_value() ? 1 : 0;
    }
  }
  EXPECT_GT(dependencies, 0);  // the stream actually exercised the detector
}

TEST(AsymmetricDetector, TinySignatureProducesFalsePositives) {
  // With 4 slots and hundreds of addresses, collisions make the detector
  // report dependencies the exact baseline rejects — the designed trade-off
  // Section V.A.3 quantifies. (False *negatives* from bloom collisions are
  // also possible but far rarer; false positives must dominate.)
  cc::AsymmetricDetector det(4, 8, 0.001);
  sg::ExactSignature exact(8);
  int fp = 0;
  int agreements = 0;
  std::uint64_t state = 7;
  for (int i = 0; i < 20000; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    const std::uintptr_t addr = 0x90000 + (state >> 33) % 1024 * 8;
    const int tid = static_cast<int>((state >> 21) % 8);
    if (((state >> 11) & 3) == 0) {
      det.on_write(addr, tid);
      exact.on_write(addr, tid);
    } else {
      const bool sig_hit = det.on_read(addr, tid).has_value();
      const bool exact_hit = exact.on_read(addr, tid).has_value();
      if (sig_hit && !exact_hit) ++fp;
      if (sig_hit == exact_hit) ++agreements;
    }
  }
  EXPECT_GT(fp, 0);
  EXPECT_GT(agreements, 0);
}

TEST(AsymmetricDetector, ByteSizeIsBoundedBySlotCount) {
  cc::AsymmetricDetector det(1024, 32, 0.001);
  // Touch far more addresses than slots: footprint must stay bounded by the
  // fully-allocated signature (n slots of blooms + n write cells).
  for (std::uintptr_t a = 0; a < 100000; ++a) {
    det.on_write(0xA0000 + a * 8, 1);
    (void)det.on_read(0xA0000 + a * 8, 2);
  }
  const std::uint64_t cap =
      det.read_signature().byte_size() + det.write_signature().byte_size();
  EXPECT_EQ(det.byte_size(), cap);
  EXPECT_LE(det.read_signature().allocated_filters(), 1024u);
}

// --- property sweep: FPR monotone in slot count ---------------------------------

namespace {

/// Spurious-dependency count of the signature detector vs the exact baseline
/// on a fixed deterministic stream, at a given slot count.
int spurious_count(std::size_t slots) {
  cc::AsymmetricDetector det(slots, 8, 1e-6);
  sg::ExactSignature exact(8);
  std::uint64_t state = 1234;
  int spurious = 0;
  for (int i = 0; i < 30000; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    const std::uintptr_t addr = 0xB00000 + (state >> 33) % 4096 * 8;
    const int tid = static_cast<int>((state >> 20) % 8);
    if (((state >> 10) & 3) == 0) {
      det.on_write(addr, tid);
      exact.on_write(addr, tid);
    } else {
      const bool s = det.on_read(addr, tid).has_value();
      const bool e = exact.on_read(addr, tid).has_value();
      if (s && !e) ++spurious;
    }
  }
  return spurious;
}

}  // namespace

class FprMonotonicity : public ::testing::TestWithParam<int> {};

TEST_P(FprMonotonicity, MoreSlotsNeverMoreSpuriousByMuch) {
  // Adjacent rungs of a slot-count ladder: 4x more slots must cut spurious
  // dependencies substantially (the Section V.A.3 collapse as a property).
  const int rung = GetParam();
  const std::size_t small_slots = std::size_t{64} << (2 * rung);
  const int coarse = spurious_count(small_slots);
  const int fine = spurious_count(small_slots * 4);
  EXPECT_LT(fine, coarse) << "slots " << small_slots << " -> "
                          << small_slots * 4;
}

INSTANTIATE_TEST_SUITE_P(Ladder, FprMonotonicity, ::testing::Values(0, 1, 2));

TEST(FprProperty, AmpleSlotsReachNearZeroSpurious) {
  // 4096 distinct addresses in 2^22 slots: expected birthday collisions
  // 4096^2 / (2 * 2^22) = 2 — the deterministic hash realizes exactly that
  // handful. The property: spurious dependencies collapse from thousands
  // (small signature, checked above) to the collision floor.
  EXPECT_LE(spurious_count(1 << 22), 4);
}

// --- concurrency stress ----------------------------------------------------------

TEST(DetectorStress, ConservationUnderConcurrentHammering) {
  // 4 threads hammer overlapping address ranges through one detector; the
  // invariants: no crash, and a serially-revalidated subset of dependencies
  // is plausible (every reported producer is a thread id that exists).
  cc::AsymmetricDetector det(1 << 16, 8, 1e-4);
  std::atomic<std::uint64_t> reported{0};
  std::atomic<bool> bogus{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&det, &reported, &bogus, t] {
      std::uint64_t state = 77 + static_cast<std::uint64_t>(t);
      for (int i = 0; i < 50000; ++i) {
        state = state * 6364136223846793005ULL + 1442695040888963407ULL;
        const std::uintptr_t addr = 0xC00000 + (state >> 33) % 2048 * 8;
        if (((state >> 11) & 7) == 0) {
          det.on_write(addr, t);
        } else if (const auto p = det.on_read(addr, t)) {
          reported.fetch_add(1, std::memory_order_relaxed);
          if (*p < 0 || *p >= 8) bogus.store(true);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(bogus.load());
  EXPECT_GT(reported.load(), 0u);
}
