// AtomicBitset tests, including the concurrent fetch_or no-lost-bits
// guarantee the signature memories rely on.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "support/bitset.hpp"

namespace cs = commscope::support;

TEST(AtomicBitset, StartsAllZero) {
  cs::AtomicBitset bs(130);
  EXPECT_EQ(bs.size(), 130u);
  EXPECT_EQ(bs.count(), 0u);
  EXPECT_FALSE(bs.any());
  for (std::size_t i = 0; i < 130; ++i) EXPECT_FALSE(bs.test(i));
}

TEST(AtomicBitset, SetReturnsPreviousValue) {
  cs::AtomicBitset bs(64);
  EXPECT_FALSE(bs.set(5));
  EXPECT_TRUE(bs.set(5));
  EXPECT_TRUE(bs.test(5));
}

TEST(AtomicBitset, WordBoundaries) {
  cs::AtomicBitset bs(192);
  bs.set(0);
  bs.set(63);
  bs.set(64);
  bs.set(191);
  EXPECT_EQ(bs.count(), 4u);
  EXPECT_TRUE(bs.test(63));
  EXPECT_TRUE(bs.test(64));
  EXPECT_FALSE(bs.test(65));
  EXPECT_EQ(bs.word_count(), 3u);
  EXPECT_EQ(bs.byte_size(), 24u);
}

TEST(AtomicBitset, ClearZeroesEverything) {
  cs::AtomicBitset bs(100);
  for (std::size_t i = 0; i < 100; i += 3) bs.set(i);
  bs.clear();
  EXPECT_EQ(bs.count(), 0u);
}

TEST(AtomicBitset, SetWordReportsWhetherMaskWasCovered) {
  cs::AtomicBitset bs(128);
  // Empty word: nothing covered.
  EXPECT_FALSE(bs.set_word(0, 0b1011));
  // Exact repeat: fully covered.
  EXPECT_TRUE(bs.set_word(0, 0b1011));
  // Overlapping mask with one new bit: not fully covered, but merges.
  EXPECT_FALSE(bs.set_word(0, 0b1111));
  EXPECT_TRUE(bs.set_word(0, 0b1111));
  EXPECT_EQ(bs.count(), 4u);
}

TEST(AtomicBitset, SetWordAtWordBoundaries) {
  // Masks touching bit 0, bit 63, and the first bit of the next word: the
  // per-word API must never smear across the 64-bit boundary the way a
  // miscomputed shift would.
  cs::AtomicBitset bs(192);
  EXPECT_FALSE(bs.set_word(0, 1ULL << 63));
  EXPECT_FALSE(bs.set_word(1, 1ULL));
  EXPECT_TRUE(bs.test(63));
  EXPECT_TRUE(bs.test(64));
  EXPECT_FALSE(bs.test(62));
  EXPECT_FALSE(bs.test(65));
  // A probe group straddling a boundary is two Probe entries, one per word;
  // setting both reproduces set() on each bit exactly.
  EXPECT_FALSE(bs.set_word(2, (1ULL << 0) | (1ULL << 63)));
  EXPECT_TRUE(bs.test(128));
  EXPECT_TRUE(bs.test(191));
  EXPECT_EQ(bs.count(), 4u);
}

TEST(AtomicBitset, SetWordMatchesPerBitSet) {
  // set_word(w, mask) must be equivalent to set() on every bit of the mask,
  // including the aggregated already-present answer.
  cs::AtomicBitset via_word(64);
  cs::AtomicBitset via_bits(64);
  const std::uint64_t masks[] = {0x8000000000000001ULL, 0x00f0ULL, 0x00f1ULL,
                                 0xffffffffffffffffULL};
  for (const std::uint64_t mask : masks) {
    const bool covered = via_word.set_word(0, mask);
    bool all_prev = true;
    for (int b = 0; b < 64; ++b) {
      if ((mask >> b) & 1ULL) all_prev &= via_bits.set(static_cast<std::size_t>(b));
    }
    EXPECT_EQ(covered, all_prev) << "mask=" << mask;
    EXPECT_EQ(via_word.word(0), via_bits.word(0)) << "mask=" << mask;
  }
}

TEST(AtomicBitset, ClearSparingMatchesClear) {
  cs::AtomicBitset bs(256);
  bs.set(1);
  bs.set(200);
  bs.clear_sparing();
  EXPECT_EQ(bs.count(), 0u);
  EXPECT_FALSE(bs.any());
  bs.clear_sparing();  // already empty: still empty, no crash
  EXPECT_EQ(bs.count(), 0u);
}

TEST(AtomicBitset, ConcurrentSameWordSetWordLosesNoBits) {
  // All threads RMW the SAME word with interleaving masks — the contention
  // shape of concurrent bloom inserts into one hot slot. fetch_or must merge
  // every mask; TSan runs this in CI's sanitizer jobs.
  cs::AtomicBitset bs(64);
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&bs, t] {
      std::uint64_t mask = 0;
      for (int b = t; b < 64; b += kThreads) mask |= 1ULL << b;
      for (int rep = 0; rep < 1000; ++rep) bs.set_word(0, mask);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(bs.word(0), ~0ULL);
}

TEST(AtomicBitset, ConcurrentSettersLoseNoBits) {
  constexpr std::size_t kBits = 4096;
  cs::AtomicBitset bs(kBits);
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&bs, t] {
      // Each thread sets bits i where i % kThreads == t; ranges interleave
      // within shared words, exercising fetch_or contention.
      for (std::size_t i = static_cast<std::size_t>(t); i < kBits;
           i += kThreads) {
        bs.set(i);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(bs.count(), kBits);
}
