// AtomicBitset tests, including the concurrent fetch_or no-lost-bits
// guarantee the signature memories rely on.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "support/bitset.hpp"

namespace cs = commscope::support;

TEST(AtomicBitset, StartsAllZero) {
  cs::AtomicBitset bs(130);
  EXPECT_EQ(bs.size(), 130u);
  EXPECT_EQ(bs.count(), 0u);
  EXPECT_FALSE(bs.any());
  for (std::size_t i = 0; i < 130; ++i) EXPECT_FALSE(bs.test(i));
}

TEST(AtomicBitset, SetReturnsPreviousValue) {
  cs::AtomicBitset bs(64);
  EXPECT_FALSE(bs.set(5));
  EXPECT_TRUE(bs.set(5));
  EXPECT_TRUE(bs.test(5));
}

TEST(AtomicBitset, WordBoundaries) {
  cs::AtomicBitset bs(192);
  bs.set(0);
  bs.set(63);
  bs.set(64);
  bs.set(191);
  EXPECT_EQ(bs.count(), 4u);
  EXPECT_TRUE(bs.test(63));
  EXPECT_TRUE(bs.test(64));
  EXPECT_FALSE(bs.test(65));
  EXPECT_EQ(bs.word_count(), 3u);
  EXPECT_EQ(bs.byte_size(), 24u);
}

TEST(AtomicBitset, ClearZeroesEverything) {
  cs::AtomicBitset bs(100);
  for (std::size_t i = 0; i < 100; i += 3) bs.set(i);
  bs.clear();
  EXPECT_EQ(bs.count(), 0u);
}

TEST(AtomicBitset, ConcurrentSettersLoseNoBits) {
  constexpr std::size_t kBits = 4096;
  cs::AtomicBitset bs(kBits);
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&bs, t] {
      // Each thread sets bits i where i % kThreads == t; ranges interleave
      // within shared words, exercising fetch_or contention.
      for (std::size_t i = static_cast<std::size_t>(t); i < kBits;
           i += kThreads) {
        bs.set(i);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(bs.count(), kBits);
}
