// ASCII rendering tests (table alignment, byte formatting, heatmap/bars
// output structure).
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <vector>

#include "support/table.hpp"

namespace cs = commscope::support;

TEST(Table, AlignsColumns) {
  cs::Table t({"app", "slowdown"});
  t.add_row({"fft", "24.9x"});
  t.add_row({"water_nsquared", "310.0x"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| app"), std::string::npos);
  EXPECT_NE(out.find("water_nsquared"), std::string::npos);
  // Every rendered line has the same width.
  std::istringstream lines(out);
  std::string line;
  std::size_t width = 0;
  while (std::getline(lines, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width);
  }
}

TEST(Table, ShortRowsArePadded) {
  cs::Table t({"a", "b", "c"});
  t.add_row({"only"});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("only"), std::string::npos);
}

TEST(TableNum, Precision) {
  EXPECT_EQ(cs::Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(cs::Table::num(2.0, 0), "2");
}

TEST(TableBytes, UnitSelection) {
  EXPECT_EQ(cs::Table::bytes(512), "512 B");
  EXPECT_EQ(cs::Table::bytes(2048), "2.00 KB");
  EXPECT_EQ(cs::Table::bytes(3u << 20), "3.00 MB");
  EXPECT_EQ(cs::Table::bytes(5ull << 30), "5.00 GB");
}

TEST(Heatmap, RendersAllRows) {
  const std::vector<std::uint64_t> m{0, 10, 10, 0};
  std::ostringstream os;
  cs::print_heatmap(os, m, 2, "demo");
  const std::string out = os.str();
  EXPECT_NE(out.find("demo"), std::string::npos);
  EXPECT_NE(out.find("max=10"), std::string::npos);
  // Two matrix rows terminated by '|'.
  EXPECT_EQ(std::count(out.begin(), out.end(), '|'), 2);
}

TEST(Heatmap, AllZeroMatrixDoesNotDivideByZero) {
  const std::vector<std::uint64_t> m(9, 0);
  std::ostringstream os;
  cs::print_heatmap(os, m, 3, "zero");
  EXPECT_NE(os.str().find("max=0"), std::string::npos);
}

TEST(Bars, ScalesToMax) {
  const std::vector<double> v{1.0, 2.0, 4.0};
  std::ostringstream os;
  cs::print_bars(os, v, "load");
  const std::string out = os.str();
  EXPECT_NE(out.find("T 0"), std::string::npos);
  EXPECT_NE(out.find("4.0"), std::string::npos);
}
