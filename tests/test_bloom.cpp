// Bloom-filter tests: Eq. 2 sizing law, no-false-negative guarantee, a
// parameterized sweep verifying the realized FPR respects the configured
// target across (capacity, fp_rate) operating points, and the word-level
// probe paths (probes_for / insert_probes / contains_probes / gathered
// words) the batched ingest drain is built on.
#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <tuple>
#include <vector>

#include "support/bloom.hpp"

namespace cs = commscope::support;

TEST(BloomParams, MatchesEq2Formula) {
  // m = -t ln(p) / ln^2(2); the paper's reference point t=32, p=0.001
  // gives ~460 bits (rounded up to a 64-bit word multiple).
  const cs::BloomParams p = cs::bloom_params(32, 0.001);
  const double ln2 = std::log(2.0);
  const double m = -32.0 * std::log(0.001) / (ln2 * ln2);
  EXPECT_NEAR(static_cast<double>(p.bits), m, 64.0);
  EXPECT_EQ(p.bits % 64, 0u);
  // k = m/t * ln 2 ~ 10 hash functions at p = 0.001.
  EXPECT_NEAR(p.hashes, 10u, 1u);
}

TEST(BloomParams, DegenerateInputsAreClamped) {
  EXPECT_GE(cs::bloom_params(0, 0.001).bits, 64u);
  EXPECT_GE(cs::bloom_params(8, -1.0).hashes, 1u);
  EXPECT_GE(cs::bloom_params(8, 2.0).hashes, 1u);
}

TEST(BloomFilter, NoFalseNegatives) {
  cs::BloomFilter bf(64, 0.01);
  for (std::uint64_t k = 0; k < 64; ++k) bf.insert(k * 977 + 13);
  for (std::uint64_t k = 0; k < 64; ++k) EXPECT_TRUE(bf.contains(k * 977 + 13));
}

TEST(BloomFilter, EmptyFilterContainsNothing) {
  cs::BloomFilter bf(32, 0.001);
  EXPECT_TRUE(bf.empty());
  for (std::uint64_t k = 0; k < 100; ++k) EXPECT_FALSE(bf.contains(k));
}

TEST(BloomFilter, InsertReportsPriorMembership) {
  cs::BloomFilter bf(32, 0.001);
  EXPECT_FALSE(bf.insert(7));  // first insertion: not previously present
  EXPECT_TRUE(bf.insert(7));   // second: already present
}

TEST(BloomFilter, ClearResets) {
  cs::BloomFilter bf(32, 0.001);
  bf.insert(1);
  bf.insert(2);
  ASSERT_FALSE(bf.empty());
  bf.clear();
  EXPECT_TRUE(bf.empty());
  EXPECT_FALSE(bf.contains(1));
  EXPECT_FALSE(bf.contains(2));
}

TEST(BloomFilter, ByteSizeMatchesParams) {
  cs::BloomFilter bf(32, 0.001);
  EXPECT_EQ(bf.byte_size(), bf.bit_count() / 8);
}

TEST(BloomFilter, EstimatedFprGrowsWithFill) {
  cs::BloomFilter bf(16, 0.01);
  const double before = bf.estimated_fpr();
  for (std::uint64_t k = 0; k < 16; ++k) bf.insert(k);
  EXPECT_LT(before, bf.estimated_fpr());
  EXPECT_LE(bf.estimated_fpr(), 1.0);
}

// --- word-level probe paths -------------------------------------------------

TEST(BloomProbes, ProbesForDedupesWordsAndBoundsCount) {
  // Across many keys and parameter points: probe-group words must be unique
  // (the dedupe insert_probes' skip test relies on), group count bounded by
  // the hash count, and every mask nonzero and confined to in-range words.
  for (const auto& [cap, fp] : {std::pair<std::size_t, double>{8, 0.01},
                                {32, 0.001},
                                {64, 0.001}}) {
    const cs::BloomParams params = cs::bloom_params(cap, fp);
    for (std::uint64_t key = 0; key < 200; ++key) {
      cs::BloomFilter::Probe probes[cs::BloomFilter::kMaxProbes];
      const std::uint32_t n = cs::BloomFilter::probes_for(params, key, probes);
      ASSERT_GE(n, 1u);
      ASSERT_LE(n, params.hashes);
      std::uint32_t total_bits = 0;
      for (std::uint32_t i = 0; i < n; ++i) {
        ASSERT_NE(probes[i].mask, 0u);
        ASSERT_LT(probes[i].word, params.bits / 64);
        total_bits += static_cast<std::uint32_t>(
            __builtin_popcountll(probes[i].mask));
        for (std::uint32_t j = i + 1; j < n; ++j) {
          ASSERT_NE(probes[i].word, probes[j].word) << "key " << key;
        }
      }
      // Grouped masks hold exactly the distinct probed positions.
      ASSERT_LE(total_bits, params.hashes);
    }
  }
}

TEST(BloomProbes, InsertProbesMatchesPerKeyInsertExactly) {
  // Drive two filters with the same key sequence, one through insert(), one
  // through the precomputed-probe path; state and return values must agree
  // at every step (this is the bit-identity the signature fast path assumes).
  const cs::BloomParams params = cs::bloom_params(16, 0.001);
  cs::BloomFilter a(params);
  cs::BloomFilter b(params);
  for (int round = 0; round < 3; ++round) {
    for (std::uint64_t key = 0; key < 16; ++key) {
      cs::BloomFilter::Probe probes[cs::BloomFilter::kMaxProbes];
      const std::uint32_t n = cs::BloomFilter::probes_for(params, key, probes);
      ASSERT_EQ(a.insert(key), b.insert_probes(probes, n))
          << "round " << round << " key " << key;
      ASSERT_EQ(a.popcount(), b.popcount());
      ASSERT_TRUE(b.contains_probes(probes, n));
      ASSERT_EQ(a.contains(key), b.contains(key));
    }
  }
}

TEST(BloomProbes, InsertProbesSecondCallTakesLoadSkipPath) {
  // The load-before-RMW skip: a fully-present probe set must still report
  // "already present" and leave the filter unchanged.
  const cs::BloomParams params = cs::bloom_params(32, 0.001);
  cs::BloomFilter bf(params);
  cs::BloomFilter::Probe probes[cs::BloomFilter::kMaxProbes];
  const std::uint32_t n = cs::BloomFilter::probes_for(params, 5, probes);
  EXPECT_FALSE(bf.insert_probes(probes, n));
  const std::size_t pop = bf.popcount();
  EXPECT_TRUE(bf.insert_probes(probes, n));
  EXPECT_EQ(bf.popcount(), pop);
}

TEST(BloomProbes, GatheredWordsJudgeLikeContainsProbes) {
  // words_cover over a gather_probe_words snapshot is contains_probes split
  // into its load and judge halves; they must agree before and after the
  // key is present, and a snapshot taken before an insert must still judge
  // the old state (it is a pure function of the snapshot).
  const cs::BloomParams params = cs::bloom_params(16, 0.001);
  cs::BloomFilter bf(params);
  cs::BloomFilter::Probe probes[cs::BloomFilter::kMaxProbes];
  const std::uint32_t n = cs::BloomFilter::probes_for(params, 3, probes);
  std::uint64_t words[cs::BloomFilter::kMaxProbes];
  bf.gather_probe_words(probes, n, words);
  EXPECT_FALSE(cs::BloomFilter::words_cover(probes, words, n));
  EXPECT_EQ(cs::BloomFilter::words_cover(probes, words, n),
            bf.contains_probes(probes, n));
  bf.insert(3);
  // Stale snapshot still judges the pre-insert state...
  EXPECT_FALSE(cs::BloomFilter::words_cover(probes, words, n));
  // ...and a fresh gather agrees with contains_probes again.
  bf.gather_probe_words(probes, n, words);
  EXPECT_TRUE(cs::BloomFilter::words_cover(probes, words, n));
  EXPECT_TRUE(bf.contains_probes(probes, n));
}

TEST(BloomProbes, ClearSparingMatchesClear) {
  const cs::BloomParams params = cs::bloom_params(64, 0.001);
  cs::BloomFilter bf(params);
  for (std::uint64_t k = 0; k < 64; ++k) bf.insert(k);
  ASSERT_FALSE(bf.empty());
  bf.clear_sparing();
  EXPECT_TRUE(bf.empty());
  for (std::uint64_t k = 0; k < 64; ++k) EXPECT_FALSE(bf.contains(k));
  bf.clear_sparing();  // idempotent on an empty filter
  EXPECT_TRUE(bf.empty());
}

TEST(BloomProbes, ConcurrentSameFilterInsertsLoseNoKey) {
  // Concurrent insert_probes into ONE filter — the hot-slot contention shape
  // of the signature drain; run under TSan in CI. No key may be lost, and
  // the final state must equal the union of all probe masks.
  const cs::BloomParams params = cs::bloom_params(64, 0.001);
  cs::BloomFilter bf(params);
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&bf, &params, t] {
      cs::BloomFilter::Probe probes[cs::BloomFilter::kMaxProbes];
      for (int rep = 0; rep < 500; ++rep) {
        for (std::uint64_t key = static_cast<std::uint64_t>(t); key < 64;
             key += kThreads) {
          const std::uint32_t n =
              cs::BloomFilter::probes_for(params, key, probes);
          bf.insert_probes(probes, n);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  for (std::uint64_t key = 0; key < 64; ++key) {
    EXPECT_TRUE(bf.contains(key)) << "lost key " << key;
  }
}

// Parameterized sweep: fill to capacity, then measure the false-positive
// rate on 20000 keys never inserted; it must stay within ~4x of the target
// (the standard bloom bound is asymptotic; small filters wobble).
class BloomFprSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, double>> {};

TEST_P(BloomFprSweep, RealizedFprRespectsTarget) {
  const auto [capacity, target] = GetParam();
  cs::BloomFilter bf(capacity, target);
  for (std::uint64_t k = 0; k < capacity; ++k) {
    bf.insert(0xabcd0000 + k * 3);
  }
  int fp = 0;
  constexpr int kProbes = 20000;
  for (int i = 0; i < kProbes; ++i) {
    if (bf.contains(0x99990000 + static_cast<std::uint64_t>(i) * 7 + 1)) ++fp;
  }
  const double realized = static_cast<double>(fp) / kProbes;
  EXPECT_LE(realized, std::max(4.0 * target, 8e-4))
      << "capacity=" << capacity << " target=" << target
      << " realized=" << realized;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BloomFprSweep,
    ::testing::Values(std::make_tuple(std::size_t{8}, 0.01),
                      std::make_tuple(std::size_t{16}, 0.01),
                      std::make_tuple(std::size_t{32}, 0.001),
                      std::make_tuple(std::size_t{32}, 0.01),
                      std::make_tuple(std::size_t{64}, 0.001),
                      std::make_tuple(std::size_t{64}, 0.1),
                      std::make_tuple(std::size_t{128}, 0.001)));
