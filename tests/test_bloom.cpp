// Bloom-filter tests: Eq. 2 sizing law, no-false-negative guarantee, and a
// parameterized sweep verifying the realized FPR respects the configured
// target across (capacity, fp_rate) operating points.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "support/bloom.hpp"

namespace cs = commscope::support;

TEST(BloomParams, MatchesEq2Formula) {
  // m = -t ln(p) / ln^2(2); the paper's reference point t=32, p=0.001
  // gives ~460 bits (rounded up to a 64-bit word multiple).
  const cs::BloomParams p = cs::bloom_params(32, 0.001);
  const double ln2 = std::log(2.0);
  const double m = -32.0 * std::log(0.001) / (ln2 * ln2);
  EXPECT_NEAR(static_cast<double>(p.bits), m, 64.0);
  EXPECT_EQ(p.bits % 64, 0u);
  // k = m/t * ln 2 ~ 10 hash functions at p = 0.001.
  EXPECT_NEAR(p.hashes, 10u, 1u);
}

TEST(BloomParams, DegenerateInputsAreClamped) {
  EXPECT_GE(cs::bloom_params(0, 0.001).bits, 64u);
  EXPECT_GE(cs::bloom_params(8, -1.0).hashes, 1u);
  EXPECT_GE(cs::bloom_params(8, 2.0).hashes, 1u);
}

TEST(BloomFilter, NoFalseNegatives) {
  cs::BloomFilter bf(64, 0.01);
  for (std::uint64_t k = 0; k < 64; ++k) bf.insert(k * 977 + 13);
  for (std::uint64_t k = 0; k < 64; ++k) EXPECT_TRUE(bf.contains(k * 977 + 13));
}

TEST(BloomFilter, EmptyFilterContainsNothing) {
  cs::BloomFilter bf(32, 0.001);
  EXPECT_TRUE(bf.empty());
  for (std::uint64_t k = 0; k < 100; ++k) EXPECT_FALSE(bf.contains(k));
}

TEST(BloomFilter, InsertReportsPriorMembership) {
  cs::BloomFilter bf(32, 0.001);
  EXPECT_FALSE(bf.insert(7));  // first insertion: not previously present
  EXPECT_TRUE(bf.insert(7));   // second: already present
}

TEST(BloomFilter, ClearResets) {
  cs::BloomFilter bf(32, 0.001);
  bf.insert(1);
  bf.insert(2);
  ASSERT_FALSE(bf.empty());
  bf.clear();
  EXPECT_TRUE(bf.empty());
  EXPECT_FALSE(bf.contains(1));
  EXPECT_FALSE(bf.contains(2));
}

TEST(BloomFilter, ByteSizeMatchesParams) {
  cs::BloomFilter bf(32, 0.001);
  EXPECT_EQ(bf.byte_size(), bf.bit_count() / 8);
}

TEST(BloomFilter, EstimatedFprGrowsWithFill) {
  cs::BloomFilter bf(16, 0.01);
  const double before = bf.estimated_fpr();
  for (std::uint64_t k = 0; k < 16; ++k) bf.insert(k);
  EXPECT_LT(before, bf.estimated_fpr());
  EXPECT_LE(bf.estimated_fpr(), 1.0);
}

// Parameterized sweep: fill to capacity, then measure the false-positive
// rate on 20000 keys never inserted; it must stay within ~4x of the target
// (the standard bloom bound is asymptotic; small filters wobble).
class BloomFprSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, double>> {};

TEST_P(BloomFprSweep, RealizedFprRespectsTarget) {
  const auto [capacity, target] = GetParam();
  cs::BloomFilter bf(capacity, target);
  for (std::uint64_t k = 0; k < capacity; ++k) {
    bf.insert(0xabcd0000 + k * 3);
  }
  int fp = 0;
  constexpr int kProbes = 20000;
  for (int i = 0; i < kProbes; ++i) {
    if (bf.contains(0x99990000 + static_cast<std::uint64_t>(i) * 7 + 1)) ++fp;
  }
  const double realized = static_cast<double>(fp) / kProbes;
  EXPECT_LE(realized, std::max(4.0 * target, 8e-4))
      << "capacity=" << capacity << " target=" << target
      << " realized=" << realized;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BloomFprSweep,
    ::testing::Values(std::make_tuple(std::size_t{8}, 0.01),
                      std::make_tuple(std::size_t{16}, 0.01),
                      std::make_tuple(std::size_t{32}, 0.001),
                      std::make_tuple(std::size_t{32}, 0.01),
                      std::make_tuple(std::size_t{64}, 0.001),
                      std::make_tuple(std::size_t{64}, 0.1),
                      std::make_tuple(std::size_t{128}, 0.001)));
