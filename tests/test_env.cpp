// Environment-configuration tests (uses setenv; each test restores state).
#include <gtest/gtest.h>

#include <cstdlib>

#include "support/env.hpp"

namespace cs = commscope::support;

namespace {

class EnvGuard {
 public:
  explicit EnvGuard(const char* name) : name_(name) { unsetenv(name); }
  ~EnvGuard() { unsetenv(name_); }
  void set(const char* value) { setenv(name_, value, 1); }

 private:
  const char* name_;
};

}  // namespace

TEST(EnvScale, DefaultsToDev) {
  EnvGuard g("COMMSCOPE_SCALE");
  EXPECT_EQ(cs::env_scale(), cs::Scale::kDev);
}

TEST(EnvScale, ParsesAllSpellings) {
  EnvGuard g("COMMSCOPE_SCALE");
  g.set("small");
  EXPECT_EQ(cs::env_scale(), cs::Scale::kSmall);
  g.set("simsmall");
  EXPECT_EQ(cs::env_scale(), cs::Scale::kSmall);
  g.set("large");
  EXPECT_EQ(cs::env_scale(), cs::Scale::kLarge);
  g.set("simlarge");
  EXPECT_EQ(cs::env_scale(), cs::Scale::kLarge);
  g.set("bogus");
  EXPECT_EQ(cs::env_scale(), cs::Scale::kDev);
}

TEST(EnvThreads, DefaultAndClamping) {
  EnvGuard g("COMMSCOPE_THREADS");
  EXPECT_EQ(cs::env_threads(8), 8);
  g.set("16");
  EXPECT_EQ(cs::env_threads(8), 16);
  g.set("1");
  EXPECT_EQ(cs::env_threads(8), 2);  // clamped low
  g.set("1000");
  EXPECT_EQ(cs::env_threads(8), 64);  // clamped high
}

TEST(EnvInt, FallbackOnGarbage) {
  EnvGuard g("COMMSCOPE_TEST_INT");
  EXPECT_EQ(cs::env_int("COMMSCOPE_TEST_INT", 42), 42);
  g.set("junk");
  EXPECT_EQ(cs::env_int("COMMSCOPE_TEST_INT", 42), 42);
  g.set("-7");
  EXPECT_EQ(cs::env_int("COMMSCOPE_TEST_INT", 42), -7);
}

TEST(EnvStr, EmptyMeansFallback) {
  EnvGuard g("COMMSCOPE_TEST_STR");
  g.set("");
  EXPECT_EQ(cs::env_str("COMMSCOPE_TEST_STR", "dflt"), "dflt");
  g.set("value");
  EXPECT_EQ(cs::env_str("COMMSCOPE_TEST_STR", "dflt"), "value");
}

TEST(ScaleNames, RoundTrip) {
  EXPECT_STREQ(cs::to_string(cs::Scale::kDev), "simdev");
  EXPECT_STREQ(cs::to_string(cs::Scale::kSmall), "simsmall");
  EXPECT_STREQ(cs::to_string(cs::Scale::kLarge), "simlarge");
}
