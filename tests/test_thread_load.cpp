// Eq. 1 thread-load metric tests.
#include <gtest/gtest.h>

#include "core/thread_load.hpp"

namespace cc = commscope::core;

TEST(ThreadLoad, DividesRowSumsByThreadCount) {
  cc::Matrix m(4);
  m.at(0, 1) = 40;
  m.at(0, 2) = 40;
  m.at(3, 0) = 8;
  const std::vector<double> load = cc::thread_load(m);
  EXPECT_DOUBLE_EQ(load[0], 20.0);  // 80 / 4
  EXPECT_DOUBLE_EQ(load[1], 0.0);
  EXPECT_DOUBLE_EQ(load[3], 2.0);
}

TEST(ThreadLoad, ExplicitThreadCountOverride) {
  cc::Matrix m(2);
  m.at(0, 1) = 100;
  EXPECT_DOUBLE_EQ(cc::thread_load(m, 10)[0], 10.0);
}

TEST(ActiveFraction, CountsNonzeroLoads) {
  EXPECT_DOUBLE_EQ(cc::active_fraction({1.0, 0.0, 2.0, 0.0}), 0.5);
  EXPECT_DOUBLE_EQ(cc::active_fraction({}), 0.0);
  EXPECT_DOUBLE_EQ(cc::active_fraction({1.0, 1.0}), 1.0);
}

TEST(LoadImbalance, EvenLoadIsZero) {
  EXPECT_DOUBLE_EQ(cc::load_imbalance({4.0, 4.0, 4.0, 4.0}), 0.0);
}

TEST(LoadImbalance, Figure8aShape) {
  // "half of threads are accessing the memory": max/mean - 1 = 1.
  EXPECT_DOUBLE_EQ(cc::load_imbalance({6.0, 6.0, 0.0, 0.0}), 1.0);
}

TEST(ConsumerLoad, DividesColumnSumsByThreadCount) {
  cc::Matrix m(4);
  m.at(1, 0) = 40;
  m.at(2, 0) = 40;
  m.at(0, 3) = 8;
  const std::vector<double> load = cc::consumer_load(m);
  EXPECT_DOUBLE_EQ(load[0], 20.0);  // consumed 80 / 4
  EXPECT_DOUBLE_EQ(load[3], 2.0);
  EXPECT_DOUBLE_EQ(load[1], 0.0);
}

TEST(InvolvementLoad, SumsProducerAndConsumerSides) {
  cc::Matrix m(2);
  m.at(0, 1) = 100;
  const std::vector<double> load = cc::involvement_load(m);
  EXPECT_DOUBLE_EQ(load[0], 50.0);  // produced 100 / 2
  EXPECT_DOUBLE_EQ(load[1], 50.0);  // consumed 100 / 2
}
