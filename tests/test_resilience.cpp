// Resilience subsystem tests: memory-tracker guardrails, the graceful-
// degradation ladder, crash-safe checkpoints, and deterministic fault
// injection. The end-to-end signal/watchdog paths are exercised through the
// CLI in test_cli.cpp; these tests drive the same machinery in-process with
// KillMode::kThrow so a "crash" is a catchable exception.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/profiler.hpp"
#include "core/report.hpp"
#include "instrument/loop_registry.hpp"
#include "instrument/sampling.hpp"
#include "resilience/checkpoint.hpp"
#include "resilience/fault_injector.hpp"
#include "resilience/guarded_sink.hpp"
#include "resilience/resource_guard.hpp"
#include "sigmem/exact_signature.hpp"
#include "support/memtrack.hpp"

namespace cc = commscope::core;
namespace ci = commscope::instrument;
namespace cr = commscope::resilience;
namespace cs = commscope::support;

namespace {

/// Emits `writes` distinct addresses written by t0 then read by t1 — every
/// address becomes tracked detector state and one RAW dependency.
void drive_pairs(ci::AccessSink& sink, int n, std::uintptr_t base = 0x1000) {
  sink.on_thread_begin(0);
  sink.on_thread_begin(1);
  for (int i = 0; i < n; ++i) {
    const std::uintptr_t addr = base + static_cast<std::uintptr_t>(i) * 8;
    sink.on_access(0, addr, 8, ci::AccessKind::kWrite);
    sink.on_access(1, addr, 8, ci::AccessKind::kRead);
  }
}

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + name;
}

}  // namespace

// --- MemoryTracker guardrails ----------------------------------------------

TEST(MemoryTracker, SubClampsAtZeroAndCountsUnderflows) {
  cs::MemoryTracker t;
  t.add(100);
  t.sub(250);
  EXPECT_EQ(t.current(), 0u);
  EXPECT_EQ(t.underflows(), 1u);
  EXPECT_FALSE(t.balanced());
}

TEST(MemoryTracker, BalancedWhenEveryAddMatched) {
  cs::MemoryTracker t;
  t.add(64);
  t.add(32);
  t.sub(32);
  EXPECT_FALSE(t.balanced());
  t.sub(64);
  EXPECT_TRUE(t.balanced());
}

TEST(MemoryTracker, SignatureAndTreeReleaseEverythingAtTeardown) {
  cs::MemoryTracker t;
  {
    commscope::sigmem::ExactSignature sig(8, &t);
    sig.on_write(0x1000, 0);
    sig.on_write(0x2000, 1);
    (void)sig.on_read(0x1000, 2);
    EXPECT_GT(t.current(), 0u);
  }
  EXPECT_TRUE(t.balanced()) << "exact signature leaked tracked bytes";
  {
    cc::RegionTree tree(4, &t);
    const ci::LoopId id =
        ci::LoopRegistry::instance().declare("test_resilience", "teardown");
    tree.root().child(id)->matrix().add(0, 1, 8);
    EXPECT_GT(t.current(), 0u);
  }
  EXPECT_TRUE(t.balanced()) << "region tree leaked tracked bytes";
}

// --- FaultInjector ----------------------------------------------------------

TEST(FaultInjector, ParsesFullSpec) {
  const cr::FaultPlan p = cr::FaultInjector::parse_plan(
      "alloc:3;kill-at-event:500;sleep-at-event:10;sleep-ms:250;"
      "write-truncate:64;write-corrupt:12;seed:99");
  EXPECT_EQ(p.fail_alloc_at, 3u);
  EXPECT_EQ(p.kill_at_event, 500u);
  EXPECT_EQ(p.sleep_at_event, 10u);
  EXPECT_EQ(p.sleep_ms, 250u);
  EXPECT_EQ(p.truncate_write_at, 64u);
  EXPECT_EQ(p.corrupt_write_at, 12u);
  EXPECT_EQ(p.seed, 99u);
  EXPECT_TRUE(p.any());
}

TEST(FaultInjector, RejectsMalformedSpecs) {
  EXPECT_THROW((void)cr::FaultInjector::parse_plan("frob:1"),
               std::invalid_argument);
  EXPECT_THROW((void)cr::FaultInjector::parse_plan("alloc"),
               std::invalid_argument);
  EXPECT_THROW((void)cr::FaultInjector::parse_plan("alloc:banana"),
               std::invalid_argument);
}

TEST(FaultInjector, FailsExactlyTheNthTrackedAllocation) {
  cr::FaultPlan plan;
  plan.fail_alloc_at = 3;
  cr::FaultInjector inj(plan, cr::KillMode::kThrow);
  cs::MemoryTracker t;
  t.set_observer(&inj);
  t.add(8);
  t.add(8);
  EXPECT_FALSE(inj.alloc_failure_pending());
  t.add(8);
  EXPECT_TRUE(inj.alloc_failure_pending());
  EXPECT_TRUE(inj.consume_alloc_failure());
  EXPECT_FALSE(inj.consume_alloc_failure()) << "failure must fire once";
  EXPECT_EQ(inj.allocs_seen(), 3u);
  t.set_observer(nullptr);
}

TEST(FaultInjector, PayloadCorruptionIsDeterministic) {
  cr::FaultPlan plan;
  plan.corrupt_write_at = 10;
  plan.seed = 1234;
  const std::string original(64, 'x');
  std::string a = original;
  std::string b = original;
  cr::FaultInjector ia(plan, cr::KillMode::kThrow);
  cr::FaultInjector ib(plan, cr::KillMode::kThrow);
  EXPECT_TRUE(ia.mutate_payload(a));
  EXPECT_TRUE(ib.mutate_payload(b));
  EXPECT_EQ(a, b) << "same plan+seed must corrupt identically";
  EXPECT_NE(a, original);
  // Each injector fires its write fault at most once.
  std::string c = original;
  EXPECT_FALSE(ia.mutate_payload(c));
  EXPECT_EQ(c, original);
}

TEST(FaultInjector, TruncationCutsPayload) {
  cr::FaultPlan plan;
  plan.truncate_write_at = 16;
  cr::FaultInjector inj(plan, cr::KillMode::kThrow);
  std::string payload(100, 'y');
  EXPECT_TRUE(inj.mutate_payload(payload));
  EXPECT_EQ(payload.size(), 16u);
}

// --- degradation ladder -----------------------------------------------------

TEST(Degradation, ExactBackendDegradesToSignatureAndKeepsState) {
  cc::ProfilerOptions o;
  o.max_threads = 4;
  o.backend = cc::Backend::kExact;
  o.signature_slots = 1 << 14;
  cc::Profiler prof(o);
  drive_pairs(prof, 50);
  const std::uint64_t deps_before = prof.stats().dependencies;
  EXPECT_EQ(deps_before, 50u);

  ASSERT_TRUE(prof.degrade_exact_to_signature(123, "test"));
  EXPECT_EQ(prof.options().backend, cc::Backend::kAsymmetricSignature);
  ASSERT_EQ(prof.degradations().size(), 1u);
  EXPECT_EQ(prof.degradations()[0].event_index, 123u);
  // The migration replays tracked state but discards producers — already-
  // counted dependencies must not be counted again.
  EXPECT_EQ(prof.stats().dependencies, deps_before);

  // Migrated writer state still produces: a *new* read of an old address
  // from a third thread detects t0 as producer.
  prof.on_thread_begin(2);
  prof.on_access(2, 0x1000, 8, ci::AccessKind::kRead);
  EXPECT_EQ(prof.stats().dependencies, deps_before + 1);

  // A second call is a no-op: the backend is already a signature.
  EXPECT_FALSE(prof.degrade_exact_to_signature(456, "test"));
}

TEST(Degradation, DenseRegionsConvertToSparsePreservingCells) {
  cc::ProfilerOptions o;
  o.max_threads = 4;
  o.backend = cc::Backend::kExact;
  cc::Profiler prof(o);
  const ci::LoopId id =
      ci::LoopRegistry::instance().declare("test_resilience", "sparse");
  prof.on_thread_begin(0);
  prof.on_thread_begin(1);
  prof.on_loop_enter(0, id);
  prof.on_loop_enter(1, id);
  drive_pairs(prof, 10, 0x9000);
  const cc::Matrix before = prof.communication_matrix();

  ASSERT_TRUE(prof.degrade_regions_to_sparse(7, "test"));
  EXPECT_TRUE(prof.options().sparse_region_matrices);
  EXPECT_EQ(prof.communication_matrix(), before)
      << "conversion must preserve every accumulated cell";
  EXPECT_FALSE(prof.degrade_regions_to_sparse(8, "test")) << "idempotent";
}

TEST(Degradation, HalvingSlotsStopsAtFloor) {
  cc::ProfilerOptions o;
  o.max_threads = 4;
  o.signature_slots = 1 << 13;  // 8192: one halving to the 4096 floor
  cc::Profiler prof(o);
  EXPECT_TRUE(prof.degrade_halve_slots(1, "test"));
  EXPECT_EQ(prof.options().signature_slots, 4096u);
  EXPECT_FALSE(prof.degrade_halve_slots(2, "test")) << "floor reached";
}

TEST(ResourceGuard, MemBudgetWalksLadderUntilExhaustedButRunSurvives) {
  cc::ProfilerOptions o;
  o.max_threads = 4;
  o.backend = cc::Backend::kExact;
  o.signature_slots = 1 << 13;
  cc::Profiler prof(o);
  drive_pairs(prof, 200);

  cr::GuardOptions g;
  g.mem_budget_bytes = 1;  // unsatisfiable: every rung must fire
  cr::ResourceGuard guard(g, prof);
  ASSERT_TRUE(guard.enabled());
  ASSERT_TRUE(guard.action_pending(100));
  guard.check(100);

  EXPECT_EQ(prof.options().backend, cc::Backend::kAsymmetricSignature);
  EXPECT_TRUE(prof.options().sparse_region_matrices);
  EXPECT_EQ(prof.options().signature_slots, 4096u);
  const auto& degs = prof.degradations();
  ASSERT_FALSE(degs.empty());
  EXPECT_NE(degs.back().action.find("ladder exhausted"), std::string::npos);
  // Further checks are quiet: nothing left to do, nothing new recorded.
  const std::size_t n = degs.size();
  guard.check(200);
  EXPECT_EQ(prof.degradations().size(), n);
}

TEST(ResourceGuard, SamplingRungLowersDutyCycle) {
  cc::ProfilerOptions o;
  o.max_threads = 4;
  o.signature_slots = 4096;  // already at floor: only sparse + sampler rungs
  cc::Profiler prof(o);
  ci::SamplingSink sampler(prof, ci::SamplingOptions{});
  cr::GuardOptions g;
  g.mem_budget_bytes = 1;
  cr::ResourceGuard guard(g, prof, nullptr, &sampler);
  guard.check(50);
  EXPECT_LE(sampler.duty_cycle(), 1.0 / 64.0 + 1e-9);
  bool sampling_logged = false;
  for (const cc::DegradationEvent& d : prof.degradations()) {
    if (d.action.find("duty cycle") != std::string::npos) sampling_logged = true;
  }
  EXPECT_TRUE(sampling_logged);
}

TEST(ResourceGuard, EventBudgetSuppressesAccessesButKeepsStructure) {
  cc::ProfilerOptions o;
  o.max_threads = 4;
  cc::Profiler prof(o);
  cr::GuardOptions g;
  g.event_budget = 100;
  g.check_interval = 16;
  cr::ResourceGuard guard(g, prof);
  cr::GuardedSink sink(prof, &guard, {});
  drive_pairs(sink, 200);  // 400 access events
  EXPECT_TRUE(guard.suppress_accesses());
  EXPECT_GT(sink.suppressed(), 0u);
  EXPECT_LT(prof.stats().accesses, 400u);
  bool logged = false;
  for (const cc::DegradationEvent& d : prof.degradations()) {
    if (d.reason.find("event budget") != std::string::npos) logged = true;
  }
  EXPECT_TRUE(logged);
  // Loop-structure events still flow while accesses are suppressed.
  const ci::LoopId id =
      ci::LoopRegistry::instance().declare("test_resilience", "suppressed");
  sink.on_loop_enter(0, id);
  sink.on_loop_exit(0);
  EXPECT_EQ(prof.regions().root().children().empty(), false);
}

TEST(ResourceGuard, InjectedAllocationFailureTakesOneRung) {
  cc::ProfilerOptions o;
  o.max_threads = 4;
  o.backend = cc::Backend::kExact;
  cc::Profiler prof(o);
  cr::FaultPlan plan;
  plan.fail_alloc_at = 5;
  cr::FaultInjector inj(plan, cr::KillMode::kThrow);
  prof.memory().set_observer(&inj);
  cr::ResourceGuard guard({}, prof, &inj);
  ASSERT_TRUE(guard.enabled()) << "an injector alone enables the guard";

  drive_pairs(prof, 20);  // plenty of tracked allocations
  ASSERT_TRUE(guard.action_pending(40));
  guard.check(40);
  prof.memory().set_observer(nullptr);
  ASSERT_EQ(prof.degradations().size(), 1u);
  EXPECT_EQ(prof.degradations()[0].reason, "injected allocation failure");
  EXPECT_EQ(prof.options().backend, cc::Backend::kAsymmetricSignature);
}

// --- checkpoints ------------------------------------------------------------

TEST(Checkpoint, SerializeParseRoundTrip) {
  cc::ProfilerOptions o;
  o.max_threads = 4;
  cc::Profiler prof(o);
  const ci::LoopId id =
      ci::LoopRegistry::instance().declare("test_resilience", "round trip");
  prof.on_thread_begin(0);
  prof.on_thread_begin(1);
  prof.on_loop_enter(0, id);
  prof.on_loop_enter(1, id);
  drive_pairs(prof, 25, 0x40000);
  prof.record_degradation(cc::DegradationEvent{
      42, 1000, 500, "a reason with spaces", "an action with spaces"});

  cr::CheckpointMeta meta;
  meta.events = 77;
  meta.state = "partial";
  meta.reason = "periodic";
  const std::string text = serialize_checkpoint(prof, meta, prof.stats());
  const cr::Checkpoint ck = cr::parse_checkpoint_text(text);

  EXPECT_EQ(ck.threads, 4);
  EXPECT_EQ(ck.backend, "signature");
  EXPECT_EQ(ck.meta.events, 77u);
  EXPECT_EQ(ck.meta.state, "partial");
  EXPECT_EQ(ck.stats.dependencies, prof.stats().dependencies);
  ASSERT_EQ(ck.degradations.size(), 1u);
  EXPECT_EQ(ck.degradations[0].reason, "a reason with spaces");
  EXPECT_EQ(ck.degradations[0].action, "an action with spaces");
  ASSERT_GE(ck.regions.size(), 2u);
  EXPECT_EQ(ck.regions[0].label, "<root>");
  EXPECT_EQ(ck.program(), prof.communication_matrix());
  // Root aggregate equals the whole program.
  EXPECT_EQ(ck.aggregate(0), ck.program());
}

TEST(Checkpoint, RejectsEveryCorruptedByte) {
  cc::ProfilerOptions o;
  o.max_threads = 2;
  cc::Profiler prof(o);
  drive_pairs(prof, 3, 0x50000);
  const std::string text =
      serialize_checkpoint(prof, cr::CheckpointMeta{}, prof.stats());
  // Flipping any single payload byte must be caught by the CRC before the
  // parser can be confused by it.
  for (std::size_t i = 0; i + 12 < text.size(); i += 7) {
    std::string damaged = text;
    damaged[i] ^= 0x20;
    EXPECT_THROW((void)cr::parse_checkpoint_text(damaged), std::runtime_error)
        << "byte " << i;
  }
  // Truncation (torn write) is also rejected.
  EXPECT_THROW(
      (void)cr::parse_checkpoint_text(text.substr(0, text.size() / 2)),
      std::runtime_error);
}

TEST(Checkpoint, MissingTrailerRejected) {
  EXPECT_THROW((void)cr::parse_checkpoint_text("commscope-checkpoint 1\n"),
               std::runtime_error);
}

TEST(Checkpoint, AtomicWriteReplacesNotTruncates) {
  const std::string path = temp_path("ck_atomic.tmp");
  cr::write_file_atomic(path, "first version\n");
  cr::write_file_atomic(path, "second version\n");
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "second version");
  std::remove(path.c_str());
}

TEST(GuardedSink, KilledReplayLeavesResumableCheckpoint) {
  const std::string path = temp_path("ck_killed.tmp");
  cc::ProfilerOptions o;
  o.max_threads = 4;
  cc::Profiler prof(o);
  cr::FaultPlan plan;
  plan.kill_at_event = 550;
  cr::FaultInjector inj(plan, cr::KillMode::kThrow);
  cr::GuardedSink::Options so;
  so.checkpoint_every = 100;
  so.checkpoint_path = path;
  cr::GuardedSink sink(prof, nullptr, so, &inj);

  EXPECT_THROW(drive_pairs(sink, 400), cr::InjectedCrash);

  const cr::Checkpoint ck = cr::load_checkpoint(path);
  EXPECT_EQ(ck.meta.state, "partial");
  EXPECT_EQ(ck.meta.events, 500u) << "last checkpoint before the crash";
  EXPECT_GT(ck.stats.accesses, 0u);
  EXPECT_GT(ck.program().total(), 0u);
  std::remove(path.c_str());
}

TEST(GuardedSink, CleanRunWritesCompleteCheckpoint) {
  const std::string path = temp_path("ck_complete.tmp");
  cc::ProfilerOptions o;
  o.max_threads = 4;
  cc::Profiler prof(o);
  cr::GuardedSink::Options so;
  so.checkpoint_every = 100;
  so.checkpoint_path = path;
  cr::GuardedSink sink(prof, nullptr, so);
  drive_pairs(sink, 80);
  sink.finalize();
  const cr::Checkpoint ck = cr::load_checkpoint(path);
  EXPECT_EQ(ck.meta.state, "complete");
  EXPECT_EQ(ck.meta.events, sink.events());
  EXPECT_EQ(ck.stats.dependencies, prof.stats().dependencies);
  std::remove(path.c_str());
}

TEST(GuardedSink, CorruptedCheckpointWriteIsRejectedOnLoad) {
  const std::string path = temp_path("ck_corrupt.tmp");
  cc::ProfilerOptions o;
  o.max_threads = 4;
  cc::Profiler prof(o);
  cr::FaultPlan plan;
  plan.corrupt_write_at = 40;
  cr::FaultInjector inj(plan, cr::KillMode::kThrow);
  cr::GuardedSink::Options so;
  so.checkpoint_every = 100;
  so.checkpoint_path = path;
  cr::GuardedSink sink(prof, nullptr, so, &inj);
  drive_pairs(sink, 60);  // crosses one checkpoint boundary: corrupt write
  EXPECT_THROW((void)cr::load_checkpoint(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(GuardedSink, MemBudgetRunEndsWithDegradationProvenance) {
  // Acceptance path (a): a run that exceeds --mem-budget completes and the
  // report carries the degradation section.
  cc::ProfilerOptions o;
  o.max_threads = 4;
  o.backend = cc::Backend::kExact;
  o.signature_slots = 1 << 13;
  cc::Profiler prof(o);
  cr::GuardOptions g;
  g.mem_budget_bytes = 32 << 10;
  g.check_interval = 64;
  cr::ResourceGuard guard(g, prof);
  cr::GuardedSink sink(prof, &guard, {});
  drive_pairs(sink, 5000);
  sink.finalize();
  EXPECT_FALSE(prof.degradations().empty());
  EXPECT_EQ(prof.options().backend, cc::Backend::kAsymmetricSignature);
  std::ostringstream report;
  cc::print_report(report, prof, {});
  EXPECT_NE(report.str().find("degradations:"), std::string::npos);
}

// --- concurrency hardening --------------------------------------------------

TEST(GuardedSink, ReentrantEventsAreDroppedAndCounted) {
  cc::ProfilerOptions o;
  o.max_threads = 4;
  o.backend = cc::Backend::kExact;
  cc::Profiler prof(o);
  cr::GuardedSink sink(prof, nullptr, {});

  // Simulate an instrumented allocator firing from inside the runtime: with
  // the thread already marked in-runtime, sink entries must drop (counted)
  // instead of recursing into profiler state mid-mutation.
  {
    commscope::threading::ThreadRegistry::ReentrancyGuard outer;
    ASSERT_TRUE(outer.engaged());
    sink.on_access(0, 0x5000, 8, ci::AccessKind::kWrite);
    sink.on_loop_enter(0, 3);
    sink.on_loop_exit(0);
  }
  EXPECT_EQ(sink.reentrant_drops(), 3u);
  EXPECT_EQ(prof.stats().accesses, 0u);

  // Outside the runtime the same calls flow normally.
  sink.on_thread_begin(0);
  sink.on_access(0, 0x5000, 8, ci::AccessKind::kWrite);
  EXPECT_EQ(sink.reentrant_drops(), 3u);
  EXPECT_EQ(prof.stats().accesses, 1u);
}

TEST(GuardedSink, SinkCallsFromNeverRegisteredThreadDegrade) {
  cc::ProfilerOptions o;
  o.max_threads = 2;
  o.backend = cc::Backend::kExact;
  cc::Profiler prof(o);
  cr::GuardedSink sink(prof, nullptr, {});
  // tid -1 models a thread the registry never admitted (table overflow):
  // the event is dropped with provenance, never a crash or OOB index.
  sink.on_thread_begin(-1);
  sink.on_access(-1, 0x6000, 8, ci::AccessKind::kWrite);
  sink.on_loop_enter(-1, 1);
  sink.on_loop_exit(-1);
  sink.finalize();
  EXPECT_EQ(prof.dropped_events(), 4u);
  EXPECT_EQ(prof.stats().accesses, 0u);
}

TEST(GuardedSink, FlushWritesPartialSnapshotMidRun) {
  const std::string path = temp_path("flush_snapshot.ck");
  cc::ProfilerOptions o;
  o.max_threads = 4;
  o.backend = cc::Backend::kExact;
  cc::Profiler prof(o);
  cr::GuardedSink::Options opts;
  opts.checkpoint_path = path;
  opts.checkpoint_every = 1u << 30;  // periodic never fires; only flush does
  cr::GuardedSink sink(prof, nullptr, opts);
  drive_pairs(sink, 16);
  // flush() is what the registry's atexit/fork hooks invoke; the written
  // snapshot must parse, resume, and carry the pre-flush dependency count.
  sink.flush();
  const cr::Checkpoint ck = cr::load_checkpoint(path);
  EXPECT_EQ(ck.meta.reason, "flush");
  EXPECT_EQ(ck.meta.state, "partial");
  EXPECT_EQ(ck.program().total(), 16u * 8u);
  std::remove(path.c_str());
}
