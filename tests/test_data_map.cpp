// NUMA page-census / data-mapping tests.
#include <gtest/gtest.h>

#include "instrument/trace.hpp"
#include "mapping/data_map.hpp"
#include "threading/thread_pool.hpp"
#include "workloads/workload.hpp"

namespace ci = commscope::instrument;
namespace cm = commscope::mapping;
namespace ct = commscope::threading;
namespace cw = commscope::workloads;

namespace {

const cm::Topology kTopo(2, 2);            // sockets {hw0,hw1} and {hw2,hw3}
const cm::Mapping kMapping{0, 1, 2, 3};    // T0,T1 socket0; T2,T3 socket1

}  // namespace

TEST(PageCensus, CountsPagesAndBytes) {
  cm::PageCensus census(4);
  census.count(0, 0x10000, 8);
  census.count(0, 0x10008, 8);  // same page
  census.count(1, 0x20000, 4);  // new page
  EXPECT_EQ(census.pages(), 2u);
  EXPECT_EQ(census.total_accesses(), 20u);
}

TEST(PageCensus, RejectsBadConfig) {
  EXPECT_THROW(cm::PageCensus(0), std::invalid_argument);
  EXPECT_THROW(cm::PageCensus(4, 1000), std::invalid_argument);  // not pow2
}

TEST(PageCensus, PlanHomesPagesOnDominantSocket) {
  cm::PageCensus census(4);
  // Page A: touched mostly by socket-1 threads.
  census.count(2, 0x10000, 800);
  census.count(0, 0x10010, 100);
  // Page B: exclusively socket-0.
  census.count(1, 0x20000, 500);
  const auto plan = census.plan(kTopo, kMapping);
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan[0].page, 0x10000u);
  EXPECT_EQ(plan[0].home_socket, 1);
  EXPECT_NEAR(plan[0].local_fraction, 800.0 / 900.0, 1e-12);
  EXPECT_EQ(plan[1].home_socket, 0);
  EXPECT_DOUBLE_EQ(plan[1].local_fraction, 1.0);
}

TEST(PageCensus, PlannedNeverWorseThanFirstTouch) {
  // First touch by thread 0 (socket 0), but the page is then hammered by
  // socket-1 threads: first-touch strands it remotely, the plan moves it.
  cm::PageCensus census(4);
  census.count(0, 0x30000, 8);       // first touch: socket 0
  census.count(2, 0x30000, 10000);   // real owner: socket 1
  census.count(3, 0x30000, 10000);
  const auto rep = census.evaluate(kTopo, kMapping);
  EXPECT_EQ(rep.total, 20008u);
  EXPECT_EQ(rep.remote_first_touch, 20000u);
  EXPECT_EQ(rep.remote_planned, 8u);
  EXPECT_LT(rep.planned_remote_fraction(), rep.first_touch_remote_fraction());
}

TEST(PageCensus, PlannedEqualsFirstTouchWhenFirstToucherDominates) {
  cm::PageCensus census(4);
  census.count(1, 0x40000, 1000);
  census.count(2, 0x40000, 10);
  const auto rep = census.evaluate(kTopo, kMapping);
  EXPECT_EQ(rep.remote_first_touch, rep.remote_planned);
  EXPECT_EQ(rep.remote_planned, 10u);
}

TEST(PageCensus, FromTraceOfRealWorkload) {
  ci::TraceRecorder rec;
  ct::ThreadTeam team(4);
  ASSERT_TRUE(cw::find("ocean_ncp")->run(cw::Scale::kDev, team, &rec).ok);
  const cm::PageCensus census = cm::PageCensus::from_trace(rec.events(), 4);
  EXPECT_GT(census.pages(), 10u);
  EXPECT_GT(census.total_accesses(), 0u);

  const auto rep = census.evaluate(kTopo, kMapping);
  EXPECT_EQ(rep.total, census.total_accesses());
  // The plan can never be worse than first touch (it picks the argmax
  // socket per page), and on an interleaved-partition stencil it must leave
  // some accesses remote (every page is shared across sockets).
  EXPECT_LE(rep.remote_planned, rep.remote_first_touch);
  EXPECT_GT(rep.remote_planned, 0u);
  EXPECT_LT(rep.planned_remote_fraction(), 1.0);
}
